// Micro-benchmarks of the Analysis-Phase planning pipeline: request-class
// coalescing in the Algorithm 2 scorer (brute force vs memoized, with
// cost-evaluation counters) and region-level parallelism across a
// multi-region trace.  The paper calls the offline analysis cost
// "acceptable"; these benches keep it that way as traces grow.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/online_advisor.hpp"
#include "src/core/planner.hpp"
#include "src/core/region_divider.hpp"
#include "src/core/stripe_optimizer.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {
namespace {

CostParams bench_params() {
  CostParams p = make_cost_params(6, 2, storage::hdd_profile(),
                                  storage::pcie_ssd_profile(),
                                  1.0 / (117.0 * 1024 * 1024));
  for (storage::OpProfile* prof : {&p.hserver_read, &p.hserver_write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.4;
    prof->startup_max *= 0.4;
  }
  return p;
}

/// IOR-style uniform region: fixed-size requests at random aligned offsets.
std::vector<FileRequest> uniform_region(std::size_t n, Bytes size) {
  Rng rng(11);
  std::vector<FileRequest> reqs;
  reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs.push_back(FileRequest{i % 2 ? IoOp::kRead : IoOp::kWrite,
                               rng.uniform_u64(0, 8192) * size, size});
  }
  return reqs;
}

/// Multi-region trace: `regions` phases of distinct request sizes, each a
/// contiguous run, so Algorithm 1 splits them apart and the planner gets
/// independent per-region work.
std::vector<trace::TraceRecord> multi_region_trace(std::size_t regions,
                                                   std::size_t per_region) {
  std::vector<trace::TraceRecord> records;
  records.reserve(regions * per_region);
  Bytes base = 0;
  for (std::size_t r = 0; r < regions; ++r) {
    const Bytes size = (128 * KiB) << (r % 4);  // 128K..1M cycle
    for (std::size_t i = 0; i < per_region; ++i) {
      trace::TraceRecord rec;
      rec.op = r % 2 ? IoOp::kWrite : IoOp::kRead;
      rec.offset = base;
      rec.size = size;
      rec.t_start = static_cast<Seconds>(records.size());
      base += size;
      records.push_back(rec);
    }
  }
  return records;
}

// ------------------------------------------------ request-class coalescing

void BM_ScoreRegion_Coalescing(benchmark::State& state) {
  // The headline A/B: one uniform region, brute-force scorer (coalesce off,
  // range(1) == 0) vs memoized scorer (range(1) == 1).  Plans are
  // bit-identical (tests/planner_parallel_test.cpp); only the work differs.
  const CostParams p = bench_params();
  const auto reqs =
      uniform_region(static_cast<std::size_t>(state.range(0)), 512 * KiB);
  OptimizerOptions opts;
  opts.max_requests = 0;  // score every request: the worst case coalescing fixes
  opts.coalesce = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_region(p, reqs, 512.0 * KiB, opts));
  }
  const auto probe = optimize_region(p, reqs, 512.0 * KiB, opts);
  state.counters["candidates"] =
      static_cast<double>(probe.candidates_evaluated);
  state.counters["cost_evals"] = static_cast<double>(probe.cost_evals);
  state.counters["cost_evals_saved"] =
      static_cast<double>(probe.cost_evals_saved);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(reqs.size()) *
                          static_cast<std::int64_t>(probe.candidates_evaluated));
}
BENCHMARK(BM_ScoreRegion_Coalescing)
    ->ArgsProduct({{1024, 4096}, {0, 1}})
    ->ArgNames({"requests", "coalesce"})
    ->Unit(benchmark::kMillisecond);

void BM_ScoreRegion_CoalescingMixedSizes(benchmark::State& state) {
  // Non-uniform region (two request sizes, read/write mix): more classes
  // per candidate, smaller but still real savings.
  const CostParams p = bench_params();
  Rng rng(13);
  std::vector<FileRequest> reqs;
  for (std::size_t i = 0; i < 2048; ++i) {
    const Bytes size = i % 3 ? 256 * KiB : 1 * MiB;
    reqs.push_back(FileRequest{i % 2 ? IoOp::kRead : IoOp::kWrite,
                               rng.uniform_u64(0, 4096) * (64 * KiB), size});
  }
  OptimizerOptions opts;
  opts.max_requests = 0;
  opts.coalesce = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_region(p, reqs, 512.0 * KiB, opts));
  }
  const auto probe = optimize_region(p, reqs, 512.0 * KiB, opts);
  state.counters["cost_evals"] = static_cast<double>(probe.cost_evals);
  state.counters["cost_evals_saved"] =
      static_cast<double>(probe.cost_evals_saved);
}
BENCHMARK(BM_ScoreRegion_CoalescingMixedSizes)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("coalesce")
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------ region-level parallelism

void BM_Analyze_RegionParallel(benchmark::State& state) {
  // Full analyze() over a multi-region trace with the planner pool at 0
  // (serial), 2 and 4 threads.  Scaling is near-linear in hardware threads;
  // the plan is bit-identical at every width.
  const CostParams p = bench_params();
  const auto records = multi_region_trace(8, 64);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads == 0 ? 1 : threads);
  PlannerOptions opts;
  opts.pool = threads == 0 ? nullptr : &pool;
  // Let Algorithm 1 keep the eight phases apart (the default 64 MiB
  // fixed-region reference would fold this small trace into one region).
  opts.divider.fixed_region_size = 4 * MiB;
  std::size_t regions = 0;
  for (auto _ : state) {
    const Plan plan = analyze(records, p, opts);
    regions = plan.regions.size();
    benchmark::DoNotOptimize(plan.rst.size());
  }
  state.counters["regions"] = static_cast<double>(regions);
}
BENCHMARK(BM_Analyze_RegionParallel)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

void BM_AnalyzeCarl_RegionParallel(benchmark::State& state) {
  // CARL runs two single-tier searches per region; the parallel grain is
  // (region, tier).
  const CostParams p = bench_params();
  const auto records = multi_region_trace(8, 64);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads == 0 ? 1 : threads);
  PlannerOptions opts;
  opts.pool = threads == 0 ? nullptr : &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_carl(records, p, 4 * GiB, opts).rst.size());
  }
}
BENCHMARK(BM_AnalyzeCarl_RegionParallel)
    ->Arg(0)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------ online adaptation costs

void BM_RegionDivider(benchmark::State& state) {
  // Algorithm 1 over one sorted trace: the batch divide_regions walk
  // (range(1) == 0) vs the incremental StreamingDivider fed request by
  // request (range(1) == 1).  The two are bit-identical by construction
  // (tests/divider_test.cpp); this bench pins the per-request bookkeeping
  // the adaptive manager pays to keep region division live online.
  const auto records = multi_region_trace(
      8, static_cast<std::size_t>(state.range(0)) / 8);
  const bool streaming = state.range(1) != 0;
  const DividerOptions opts;
  std::size_t regions = 0;
  if (streaming) {
    // The streaming form takes the settled threshold as given (its online
    // caller inherits it from the last full division).
    const double threshold = divide_regions(records, opts).threshold_used;
    for (auto _ : state) {
      StreamingDivider divider(threshold);
      for (const auto& r : records) divider.add(r);
      regions = divider.finish().size();
      benchmark::DoNotOptimize(regions);
    }
  } else {
    for (auto _ : state) {
      const RegionDivision division = divide_regions(records, opts);
      regions = division.regions.size();
      benchmark::DoNotOptimize(regions);
    }
  }
  state.counters["regions"] = static_cast<double>(regions);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_RegionDivider)
    ->ArgsProduct({{4096, 16384}, {0, 1}})
    ->ArgNames({"requests", "streaming"})
    ->Unit(benchmark::kMillisecond);

void BM_AdvisorWindow(benchmark::State& state) {
  // Steady-state cost of the OnlineAdvisor on the foreground completion
  // path: every observe() does O(log window) insertion, and each full
  // window re-runs the Analysis Phase with the persistent cost memo.  This
  // is the budget the adaptive manager spends per request while deciding
  // whether to re-layout.
  const CostParams p = bench_params();
  RegionStripeTable current;
  current.add(0, {28 * KiB, 172 * KiB});
  OnlineAdvisor::Options opts;
  opts.window = static_cast<std::size_t>(state.range(0));
  opts.min_gain = 0.0;  // ungated: count every recommendation
  Rng rng(17);
  std::vector<trace::TraceRecord> stream;
  stream.reserve(16384);
  for (std::size_t i = 0; i < 16384; ++i) {
    trace::TraceRecord r;
    r.op = i % 2 ? IoOp::kWrite : IoOp::kRead;
    r.offset = rng.uniform_u64(0, 2048) * (128 * KiB);
    r.size = 128 * KiB;
    stream.push_back(r);
  }
  std::uint64_t evals = 0;
  std::uint64_t saved = 0;
  std::size_t recs = 0;
  for (auto _ : state) {
    OnlineAdvisor advisor(p, current, opts);
    recs = 0;
    for (const auto& r : stream) {
      if (advisor.observe(r).has_value()) ++recs;
    }
    evals = advisor.cost_evals();
    saved = advisor.cost_evals_saved();
    benchmark::DoNotOptimize(recs);
  }
  state.counters["recommendations"] = static_cast<double>(recs);
  state.counters["cost_evals"] = static_cast<double>(evals);
  state.counters["cost_evals_saved"] = static_cast<double>(saved);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_AdvisorWindow)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->ArgName("window")
    ->Unit(benchmark::kMillisecond);

void BM_Analyze_PresortedTrace(benchmark::State& state) {
  // The harness hands the planner traces already in ByOffset order; the
  // planner now detects that and skips the copy + sort.
  const CostParams p = bench_params();
  auto records = multi_region_trace(8, 256);
  if (state.range(0) == 0) {
    // Reversed input forces the sorted-copy path for comparison.
    std::vector<trace::TraceRecord> reversed(records.rbegin(), records.rend());
    records = reversed;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(records, p).rst.size());
  }
}
BENCHMARK(BM_Analyze_PresortedTrace)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("presorted")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace harl::core

BENCHMARK_MAIN();
