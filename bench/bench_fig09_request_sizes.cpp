// Paper Fig. 9: IOR throughput with varied request sizes (128 KiB and
// 1024 KiB).  The paper reports the optimal layout at 128 KiB is {0K, 64K}
// (SServers only) while at 1024 KiB HARL spreads data over both tiers.
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());
  std::vector<harness::SchemeResult> all;

  for (Bytes req : {128 * KiB, 1024 * KiB}) {
    workloads::IorConfig ior = default_ior();
    ior.request_size = req;
    if (!paper_scale()) ior.requests_per_process = 96;
    const auto bundle = harness::ior_bundle(ior);

    auto results = exp.run_all(bundle, full_lineup());
    print_scheme_table(
        std::cout,
        "Fig. 9: IOR throughput, request size " + format_size(req), results);
    for (auto& r : results) {
      if (r.label == "HARL") {
        std::cout << "HARL chose " << r.layout_description
                  << (req == 128 * KiB ? " (paper: {0K,64K}, SServers only)"
                                       : " (paper: spread over both tiers)")
                  << "\n";
      }
      r.label = format_size(req) + "/" + r.label;
      all.push_back(std::move(r));
    }
  }
  return all;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "fig09",
                                        harl::bench::run);
}
