// Paper Fig. 11 (Section IV-B.5): non-uniform I/O — a modified IOR accesses
// a four-region file (256 MB / 1 GB / 2 GB / 4 GB) with a different request
// size per region.  Region-level layout fits each region's workload where
// any single file-level stripe cannot.
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());

  workloads::MultiRegionConfig mr;
  mr.processes = 16;
  mr.regions = {
      {256 * MiB, 128 * KiB},
      {1 * GiB, 512 * KiB},
      {2 * GiB, 1 * MiB},
      {4 * GiB, 2 * MiB},
  };
  mr.coverage = paper_scale() ? 1.0 : 0.05;
  const auto bundle = harness::multiregion_bundle(mr);

  auto lineup = full_lineup();
  // CARL baseline (paper reference [31]): region-level placement but each
  // region entirely on one tier; SSD budget = a quarter of the file.
  lineup.push_back(
      harness::LayoutScheme::carl(workloads::multiregion_file_size(mr) / 4));
  auto results = exp.run_all(bundle, lineup);
  print_scheme_table(std::cout,
                     "Fig. 11: non-uniform four-region workload by layout",
                     results);
  for (const auto& r : results) {
    if (r.label == "HARL" && r.plan) {
      std::cout << "HARL regions (" << r.region_count << " after merge):\n";
      for (const auto& reg : r.plan->regions) {
        std::cout << "  [" << format_size(reg.offset) << ", "
                  << format_size(reg.end) << ") h=" << format_size(reg.stripes[0])
                  << " s=" << format_size(reg.stripes[1])
                  << " avg_req=" << format_size(static_cast<Bytes>(reg.avg_request))
                  << "\n";
      }
    }
  }
  return results;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "fig11",
                                        harl::bench::run);
}
