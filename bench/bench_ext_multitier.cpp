// Extension bench (paper future work): "extend our cost model to
// accommodate more than two server performance profiles."
//
// A three-tier cluster (4 HDD + 2 SATA-SSD + 2 NVMe) is laid out three
// ways and measured end-to-end in the simulator:
//   * uniform 64K      — the conventional fixed layout;
//   * 2-tier collapsed — SATA and NVMe blended into one "SSD" profile, the
//     paper's two-profile model optimizes (h, s), and the pair is applied
//     to both SSD tiers;
//   * 3-tier aware     — core::optimize_region_tiered searches per-tier
//     stripes with the generalized cost model.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/common/rng.hpp"
#include "src/core/stripe_optimizer.hpp"
#include "src/harness/table.hpp"
#include "src/pfs/cluster.hpp"
#include "src/sim/simulator.hpp"
#include "src/storage/profiles.hpp"

namespace harl::bench {
namespace {

const std::vector<std::size_t> kCounts = {4, 2, 2};

pfs::ClusterConfig cluster_config() {
  pfs::ClusterConfig cfg;
  cfg.tiers = {
      pfs::TierGroup{"hdd", kCounts[0], storage::hdd_profile(), false},
      pfs::TierGroup{"sata", kCounts[1], storage::sata_ssd_profile(), true},
      pfs::TierGroup{"nvme", kCounts[2], storage::nvme_ssd_profile(), true},
  };
  return cfg;
}

/// Calibrated-style model parameters per tier (effective HDD beta, small
/// sequential-fit alpha; SSD tiers keep nominal profiles).
core::TieredCostParams tier_params() {
  core::TieredCostParams p;
  p.t = pfs::ClusterConfig{}.network.per_byte;
  auto hdd = storage::hdd_profile();
  for (storage::OpProfile* prof : {&hdd.read, &hdd.write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.55;
    prof->startup_max *= 0.55;
  }
  p.tiers = {
      core::TierSpec{kCounts[0], hdd},
      core::TierSpec{kCounts[1], storage::sata_ssd_profile()},
      core::TierSpec{kCounts[2], storage::nvme_ssd_profile()},
  };
  return p;
}

std::vector<FileRequest> workload(Bytes request_size, std::size_t n) {
  Rng rng(21);
  std::vector<FileRequest> reqs;
  reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs.push_back(FileRequest{i % 2 ? IoOp::kRead : IoOp::kWrite,
                               rng.uniform_u64(0, 4096) * request_size,
                               request_size});
  }
  return reqs;
}

double simulate(const std::vector<FileRequest>& reqs,
                std::shared_ptr<const pfs::Layout> layout) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, cluster_config());
  Bytes total = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    total += reqs[i].size;
    cluster.client(i % cluster.num_clients())
        .io(*layout, reqs[i].op, reqs[i].offset, reqs[i].size, [] {});
  }
  sim.run();
  return static_cast<double>(total) / sim.now() / (1024.0 * 1024.0);
}

std::string describe(const std::vector<Bytes>& stripes) {
  std::string out = "{";
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    if (i > 0) out += ", ";
    out += format_size(stripes[i]);
  }
  return out + "}";
}

void run_tables() {
  const auto p3 = tier_params();

  // The collapsed two-tier view: blend SATA+NVMe.
  core::TieredCostParams p2 = p3;
  storage::TierProfile blended = storage::sata_ssd_profile();
  const storage::TierProfile nvme = storage::nvme_ssd_profile();
  blended.name = "blended_ssd";
  for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
    storage::OpProfile& out = op == IoOp::kRead ? blended.read : blended.write;
    out.startup_min = 0.5 * (out.startup_min + nvme.op(op).startup_min);
    out.startup_max = 0.5 * (out.startup_max + nvme.op(op).startup_max);
    out.per_byte = 0.5 * (out.per_byte + nvme.op(op).per_byte);
  }
  p2.tiers = {p3.tiers[0], core::TierSpec{kCounts[1] + kCounts[2], blended}};

  std::cout << "\n== Extension: three-tier layout (4 HDD + 2 SATA-SSD + 2 "
               "NVMe), simulated throughput ==\n";
  harness::Table table({"request", "uniform 64K", "2-tier collapsed",
                        "3-tier aware", "aware stripes", "aware vs 64K"});
  for (Bytes req : {256 * KiB, 1 * MiB, 4 * MiB}) {
    const auto reqs = workload(req, 96);
    core::TieredOptimizerOptions opts;
    opts.step = req >= 4 * MiB ? 64 * KiB : 16 * KiB;

    const auto aware =
        core::optimize_region_tiered(p3, reqs, static_cast<double>(req), opts);
    const auto blind =
        core::optimize_region_tiered(p2, reqs, static_cast<double>(req), opts);
    const std::vector<Bytes> blind_expanded = {blind.stripes[0],
                                               blind.stripes[1],
                                               blind.stripes[1]};

    const double uniform =
        simulate(reqs, pfs::make_fixed_layout(8, 64 * KiB));
    const double collapsed =
        simulate(reqs, pfs::make_tiered_layout(kCounts, blind_expanded));
    const double tier_aware =
        simulate(reqs, pfs::make_tiered_layout(kCounts, aware.stripes));

    table.add_row({
        format_size(req),
        harness::cell(uniform, 1),
        harness::cell(collapsed, 1),
        harness::cell(tier_aware, 1),
        describe(aware.stripes),
        harness::cell_ratio(tier_aware, uniform),
    });
  }
  table.print(std::cout);
  std::cout << "(columns are simulated MB/s; 2-tier collapsed = the paper's "
               "two-profile model applied to a three-tier cluster)\n";
}

void BM_ThreeTierOptimize(benchmark::State& state) {
  const auto p3 = tier_params();
  const auto reqs = workload(1 * MiB, 64);
  core::TieredOptimizerOptions opts;
  opts.step = 64 * KiB;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::optimize_region_tiered(p3, reqs, 1.0 * MiB, opts));
  }
}
BENCHMARK(BM_ThreeTierOptimize)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  harl::bench::run_tables();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
