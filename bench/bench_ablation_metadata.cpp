// Ablation: metadata overhead of region count (paper Section III-C).
//
// Algorithm 1 can splinter a bursty trace into many regions; the paper
// bounds the count by raising the CV threshold because "too many regions
// leads to substantial extra metadata management overhead".  This bench
// makes that overhead visible: the MDS resolves the RST *per request*
// (paper Section III-F) with a per-region lookup cost, and the same
// workload runs under plans whose region-count cap is swept from strict to
// absent.
#include "bench/bench_common.hpp"

#include "src/middleware/mpi_world.hpp"
#include "src/workloads/random_workload.hpp"

namespace harl::bench {
namespace {

/// A bursty trace: short constant-size runs with frequent changes, which
/// splits aggressively at the default threshold.
std::vector<trace::TraceRecord> bursty_trace() {
  std::vector<trace::TraceRecord> records;
  Rng rng(41);
  Bytes base = 0;
  for (int run = 0; run < 160; ++run) {
    const Bytes size = (64 * KiB) << rng.uniform_u64(0, 4);  // 64K..1M
    for (int i = 0; i < 6; ++i) {
      trace::TraceRecord r;
      r.op = i % 2 ? IoOp::kRead : IoOp::kWrite;
      r.offset = base;
      r.size = size;
      base += size;
      records.push_back(r);
    }
  }
  return records;
}

double run_with_plan(const core::Plan& plan,
                     const std::vector<trace::TraceRecord>& requests,
                     Seconds per_region_cost) {
  sim::Simulator sim;
  pfs::ClusterConfig cfg;
  cfg.mds_per_region_cost = per_region_cost;
  pfs::Cluster cluster(sim, cfg);
  mw::MpiWorld world(cluster, 8);
  mw::RunnerOptions ropts;
  ropts.per_request_metadata = true;  // every request resolves via the MDS
  mw::ProgramRunner runner(world, "data", plan.rst.to_layout(6, 2), nullptr,
                           ropts);
  std::vector<mw::RankProgram> programs(8);
  Bytes total = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    programs[i % 8].push_back(
        mw::IoAction::io(requests[i].op, requests[i].offset, requests[i].size));
    total += requests[i].size;
  }
  const auto result = runner.run(programs);
  return static_cast<double>(total) / result.makespan / (1024.0 * 1024.0);
}

void run_tables() {
  pfs::ClusterConfig cluster;
  harness::CalibrationOptions copts;
  const core::CostParams params = harness::calibrate(cluster, copts);
  const auto records = bursty_trace();

  std::cout << "\n== Ablation: RST size vs throughput with per-request "
               "metadata lookups ==\n";
  harness::Table table({"region cap policy", "regions", "threshold",
                        "MB/s @2us/region", "MB/s @20us/region",
                        "MB/s @50us/region"});

  struct Policy {
    std::string name;
    Bytes fixed_region_size;  // 0 = no cap
  };
  for (const Policy& policy :
       {Policy{"paper default (64M chunks)", 64 * MiB},
        Policy{"loose cap (4M chunks)", 4 * MiB},
        Policy{"no cap", 0}}) {
    core::PlannerOptions popts;
    popts.divider.fixed_region_size = policy.fixed_region_size;
    const core::Plan plan = core::analyze(records, params, popts);
    table.add_row({
        policy.name,
        std::to_string(plan.rst.size()),
        harness::cell(plan.threshold_used * 100.0, 0) + "%",
        harness::cell(run_with_plan(plan, records, 2e-6), 1),
        harness::cell(run_with_plan(plan, records, 20e-6), 1),
        harness::cell(run_with_plan(plan, records, 50e-6), 1),
    });
  }
  table.print(std::cout);
  std::cout << "(cheap metadata favours fine regions for their better layout "
               "fit; as per-region lookup cost grows, the MDS becomes the "
               "bottleneck and the paper's region-count cap wins)\n";
}

}  // namespace
}  // namespace harl::bench

void BM_PlacementLookup(benchmark::State& state) {
  harl::sim::Simulator sim;
  harl::pfs::MetadataServer mds(sim, 200e-6, 2e-6);
  mds.register_file("f", harl::pfs::make_fixed_layout(8, 64 * harl::KiB));
  for (auto _ : state) {
    mds.placement_lookup(
        "f", [](std::shared_ptr<const harl::pfs::Layout>) {});
    sim.run();
  }
}
BENCHMARK(BM_PlacementLookup);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  harl::bench::run_tables();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
