// Paper Fig. 1b: IOR throughput under varied request sizes (128K..2M) and
// fixed stripe sizes (16K..2M), showing that no single stripe size is good
// for every workload — the motivation for region-level, varied-size stripes.
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());

  const std::vector<Bytes> request_sizes = {128 * KiB, 256 * KiB, 512 * KiB,
                                            1 * MiB, 2 * MiB};
  const std::vector<Bytes> stripes = {16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB,
                                      2 * MiB};

  std::vector<harness::SchemeResult> all;
  std::vector<std::string> headers = {"request"};
  for (Bytes st : stripes) headers.push_back(format_size(st) + " MB/s");
  harness::Table table(headers);

  for (Bytes req : request_sizes) {
    workloads::IorConfig ior = default_ior();
    ior.request_size = req;
    if (!paper_scale()) ior.requests_per_process = 64;
    const auto bundle = harness::ior_bundle(ior);

    std::vector<std::string> row = {format_size(req)};
    for (Bytes st : stripes) {
      auto result = exp.run(bundle, harness::LayoutScheme::fixed(st));
      row.push_back(mbps(result.total.throughput()));
      result.label = format_size(req) + "/" + result.label;
      all.push_back(std::move(result));
    }
    table.add_row(std::move(row));
  }

  std::cout << "\n== Fig. 1b: IOR throughput vs request size x fixed stripe "
               "size ==\n";
  table.print(std::cout);
  std::cout << "(rows: request size; columns: fixed stripe size; the best "
               "stripe shifts with the request size)\n";
  return all;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "fig01b",
                                        harl::bench::run);
}
