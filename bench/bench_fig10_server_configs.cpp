// Paper Fig. 10: IOR throughput with varied HServer:SServer ratios (7:1 and
// 2:6, plus the default 6:2).  More SServers let HARL place files mostly or
// entirely on the fast tier; the paper reports read gains up to 556% over
// other layouts at favourable ratios.
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  std::vector<harness::SchemeResult> all;

  struct Ratio {
    std::size_t h;
    std::size_t s;
  };
  for (Ratio ratio : {Ratio{7, 1}, Ratio{6, 2}, Ratio{2, 6}}) {
    harness::ExperimentOptions opts = default_options();
    opts.cluster.num_hservers = ratio.h;
    opts.cluster.num_sservers = ratio.s;
    harness::Experiment exp(opts);
    const auto bundle = harness::ior_bundle(default_ior());

    const std::string tag =
        std::to_string(ratio.h) + ":" + std::to_string(ratio.s);
    auto results = exp.run_all(bundle, full_lineup());
    print_scheme_table(std::cout,
                       "Fig. 10: IOR throughput, HServer:SServer = " + tag,
                       results);
    for (auto& r : results) {
      if (r.label == "HARL") {
        std::cout << "HARL chose " << r.layout_description << "\n";
      }
      r.label = tag + "/" + r.label;
      all.push_back(std::move(r));
    }
  }
  return all;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "fig10",
                                        harl::bench::run);
}
