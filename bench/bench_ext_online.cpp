// Extension bench (paper future work): on-line data layout.
//
// A workload drifts mid-run: phase A issues 128 KiB requests (for which the
// offline Analysis Phase installed the SServer-only {0K, 64K} layout, paper
// Fig. 9), phase B shifts to 2 MiB requests whose optimum is a wide hybrid
// spread — on the stale layout they squeeze through two servers.  Three
// strategies are measured on phase B in the simulator:
//   * static-offline — keep the phase-A layout (what the paper's offline
//     pipeline would do);
//   * oracle-offline — re-run the offline pipeline on a phase-B trace
//     (upper bound);
//   * online-advisor — the OnlineAdvisor watches the stream, detects the
//     drift after one window, and its adopted RST serves the rest.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/common/rng.hpp"
#include "src/core/online_advisor.hpp"
#include "src/harness/calibration.hpp"
#include "src/harness/table.hpp"
#include "src/pfs/cluster.hpp"
#include "src/sim/simulator.hpp"

namespace harl::bench {
namespace {

std::vector<trace::TraceRecord> phase_requests(Bytes request_size,
                                               std::size_t count,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<trace::TraceRecord> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace::TraceRecord r;
    r.op = i % 2 ? IoOp::kRead : IoOp::kWrite;
    r.offset = rng.uniform_u64(0, 4096) * request_size;
    r.size = request_size;
    reqs.push_back(r);
  }
  return reqs;
}

double simulate(const std::vector<trace::TraceRecord>& reqs,
                std::shared_ptr<const pfs::Layout> layout) {
  sim::Simulator sim;
  pfs::ClusterConfig cfg;
  pfs::Cluster cluster(sim, cfg);
  Bytes total = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    total += reqs[i].size;
    cluster.client(i % cluster.num_clients())
        .io(*layout, reqs[i].op, reqs[i].offset, reqs[i].size, [] {});
  }
  sim.run();
  return static_cast<double>(total) / sim.now() / (1024.0 * 1024.0);
}

void run_tables() {
  pfs::ClusterConfig cluster;
  const core::CostParams params = harness::calibrate(cluster);

  const auto phase_a = phase_requests(128 * KiB, 512, 31);
  const auto phase_b = phase_requests(2 * MiB, 256, 32);

  // Offline pipeline on phase A: the installed (soon stale) layout.
  const core::Plan plan_a = core::analyze(phase_a, params);
  auto static_layout = plan_a.rst.to_layout(6, 2);

  // Oracle: offline pipeline on phase B itself.
  const core::Plan plan_b = core::analyze(phase_b, params);
  auto oracle_layout = plan_b.rst.to_layout(6, 2);

  // Online advisor: watch phase B; adopt the first recommendation.
  core::OnlineAdvisor::Options aopts;
  aopts.window = 128;
  core::OnlineAdvisor advisor(params, plan_a.rst, aopts);
  std::size_t detected_after = 0;
  for (std::size_t i = 0; i < phase_b.size(); ++i) {
    if (auto rec = advisor.observe(phase_b[i])) {
      advisor.adopt(*rec);
      detected_after = i + 1;
      break;
    }
  }
  auto online_layout = advisor.current().to_layout(6, 2);

  std::cout << "\n== Extension: on-line re-layout after a workload shift "
               "(128K -> 2M requests) ==\n";
  harness::Table table(
      {"strategy", "phase-B layout", "phase-B MB/s", "vs static"});
  const double statict = simulate(phase_b, static_layout);
  const double oracle = simulate(phase_b, oracle_layout);
  const double online = simulate(phase_b, online_layout);
  table.add_row({"static-offline", static_layout->describe(),
                 harness::cell(statict, 1), "+0.0%"});
  table.add_row({"online-advisor", online_layout->describe(),
                 harness::cell(online, 1),
                 harness::cell_ratio(online, statict)});
  table.add_row({"oracle-offline", oracle_layout->describe(),
                 harness::cell(oracle, 1),
                 harness::cell_ratio(oracle, statict)});
  table.print(std::cout);
  std::cout << "(advisor detected the drift after " << detected_after
            << " requests — one analysis window)\n";
}

void BM_AdvisorObserve(benchmark::State& state) {
  pfs::ClusterConfig cluster;
  harness::CalibrationOptions copts;
  copts.samples_per_size = 300;
  copts.beta_samples = 300;
  const core::CostParams params = harness::calibrate(cluster, copts);
  core::RegionStripeTable rst;
  rst.add(0, {28 * KiB, 172 * KiB});
  core::OnlineAdvisor::Options opts;
  opts.window = 256;
  core::OnlineAdvisor advisor(params, rst, opts);
  const auto stream = phase_requests(128 * KiB, 4096, 33);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(advisor.observe(stream[i % stream.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_AdvisorObserve);

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  harl::bench::run_tables();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
