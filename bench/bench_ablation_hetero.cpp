// Ablation B: how much of HARL's gain comes from *heterogeneity-aware*
// stripes vs region division alone?  Compares full HARL against the
// segment-level scheme (the paper's reference [10]): same Algorithm-1
// regions, but one homogeneous stripe size per region.
//
// Aged-fleet sweep: on a fleet where half the SSD tier has aged (per-device
// time factor 1x/2x/4x), compares device-aware HARL (planner sees per-slot
// speeds, may restrict striping to the fastest members) against tier-blind
// HARL (pre-device-model planner: one profile per tier) and fixed 64K.
// bench_sim_report.py --hetero gates on the aware/blind ratios.
#include <sstream>

#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());
  std::vector<harness::SchemeResult> all;

  // Uniform IOR (heterogeneity matters, regions do not)...
  {
    const auto bundle = harness::ior_bundle(default_ior());
    auto results = exp.run_all(
        bundle, {harness::LayoutScheme::fixed(64 * KiB),
                 harness::LayoutScheme::segment_level(),
                 harness::LayoutScheme::harl()});
    print_scheme_table(std::cout,
                       "Ablation: heterogeneity-aware vs segment-level "
                       "(uniform IOR, 512K)",
                       results);
    for (auto& r : results) {
      r.label = "ior/" + r.label;
      all.push_back(std::move(r));
    }
  }

  // ...and the four-region workload (both dimensions matter).
  {
    workloads::MultiRegionConfig mr;
    mr.processes = 16;
    mr.regions = {
        {256 * MiB, 128 * KiB},
        {1 * GiB, 512 * KiB},
        {2 * GiB, 2 * MiB},
    };
    mr.coverage = paper_scale() ? 1.0 : 0.08;
    const auto bundle = harness::multiregion_bundle(mr);
    auto results = exp.run_all(
        bundle, {harness::LayoutScheme::fixed(64 * KiB),
                 harness::LayoutScheme::segment_level(),
                 harness::LayoutScheme::harl()});
    print_scheme_table(std::cout,
                       "Ablation: heterogeneity-aware vs segment-level "
                       "(non-uniform)",
                       results);
    for (auto& r : results) {
      r.label = "multiregion/" + r.label;
      all.push_back(std::move(r));
    }
  }
  std::cout << "(segment = Algorithm-1 regions with homogeneous per-region "
               "stripes; the gap to HARL is the value of per-tier stripe "
               "sizing)\n";

  // Aged-SSD speed-spread sweep: 4 SServers, the slower half aged by the
  // spread factor.  The multiregion workload mixes request sizes, so both
  // the member-restriction and the share-shift responses of the
  // device-aware planner get exercised.
  for (const double spread : {1.0, 2.0, 4.0}) {
    harness::ExperimentOptions opts = default_options();
    opts.cluster.num_sservers = 4;
    if (spread > 1.0) {
      opts.cluster.ssd_factors = {1.0, 1.0, spread, spread};
    }
    workloads::MultiRegionConfig mr;
    mr.processes = 8;
    mr.coverage = paper_scale() ? 1.0 : 0.1;
    const auto bundle = harness::multiregion_bundle(mr);

    harness::Experiment aware(opts);
    auto results =
        aware.run_all(bundle, {harness::LayoutScheme::fixed(64 * KiB),
                               harness::LayoutScheme::harl()});
    harness::ExperimentOptions blind_opts = opts;
    blind_opts.calibration.device_blind = true;
    harness::Experiment blind(blind_opts);
    auto blind_results =
        blind.run_all(bundle, {harness::LayoutScheme::harl()});
    blind_results[0].label = "HARL-blind";
    results.push_back(std::move(blind_results[0]));

    std::ostringstream title;
    title << "Aged fleet: device-aware vs tier-blind HARL (half of 4 "
             "SServers aged "
          << spread << "x)";
    print_scheme_table(std::cout, title.str(), results);
    const std::string tag =
        "aged" + std::to_string(static_cast<int>(spread)) + "x/";
    for (auto& r : results) {
      r.label = tag + r.label;
      all.push_back(std::move(r));
    }
  }
  std::cout << "(HARL-blind = planner calibrated per tier only; HARL = "
               "planner sees per-device speed factors)\n";
  return all;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "ablation_hetero",
                                        harl::bench::run);
}
