// Ablation B: how much of HARL's gain comes from *heterogeneity-aware*
// stripes vs region division alone?  Compares full HARL against the
// segment-level scheme (the paper's reference [10]): same Algorithm-1
// regions, but one homogeneous stripe size per region.
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());
  std::vector<harness::SchemeResult> all;

  // Uniform IOR (heterogeneity matters, regions do not)...
  {
    const auto bundle = harness::ior_bundle(default_ior());
    auto results = exp.run_all(
        bundle, {harness::LayoutScheme::fixed(64 * KiB),
                 harness::LayoutScheme::segment_level(),
                 harness::LayoutScheme::harl()});
    print_scheme_table(std::cout,
                       "Ablation: heterogeneity-aware vs segment-level "
                       "(uniform IOR, 512K)",
                       results);
    for (auto& r : results) {
      r.label = "ior/" + r.label;
      all.push_back(std::move(r));
    }
  }

  // ...and the four-region workload (both dimensions matter).
  {
    workloads::MultiRegionConfig mr;
    mr.processes = 16;
    mr.regions = {
        {256 * MiB, 128 * KiB},
        {1 * GiB, 512 * KiB},
        {2 * GiB, 2 * MiB},
    };
    mr.coverage = paper_scale() ? 1.0 : 0.08;
    const auto bundle = harness::multiregion_bundle(mr);
    auto results = exp.run_all(
        bundle, {harness::LayoutScheme::fixed(64 * KiB),
                 harness::LayoutScheme::segment_level(),
                 harness::LayoutScheme::harl()});
    print_scheme_table(std::cout,
                       "Ablation: heterogeneity-aware vs segment-level "
                       "(non-uniform)",
                       results);
    for (auto& r : results) {
      r.label = "multiregion/" + r.label;
      all.push_back(std::move(r));
    }
  }
  std::cout << "(segment = Algorithm-1 regions with homogeneous per-region "
               "stripes; the gap to HARL is the value of per-tier stripe "
               "sizing)\n";
  return all;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "ablation_hetero",
                                        harl::bench::run);
}
