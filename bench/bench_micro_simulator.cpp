// Micro-benchmarks of the discrete-event substrate: raw event dispatch
// rate, FIFO resource throughput, and end-to-end simulated-request rate of
// the PFS cluster — these bound how large a workload the figure benches can
// replay per wall-clock second.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/obs/recorder.hpp"
#include "src/pfs/cluster.hpp"
#include "src/pfs/replication.hpp"
#include "src/sim/pdes.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"

namespace harl {
namespace {

/// allocations/event of one simulator run: arena chunk growth (the only
/// scheduling-path malloc) plus callables that spilled out of InlineTask's
/// in-place buffer.  ~0 at steady state; BENCH_sim.json tracks it.
double allocs_per_event(const sim::Simulator::Stats& stats) {
  if (stats.events_dispatched == 0) return 0.0;
  return static_cast<double>(stats.pool_misses + stats.heap_callbacks) /
         static_cast<double>(stats.events_dispatched);
}

/// Exports the engine's lane/pool/spill counters so BENCH_sim.json shows
/// *where* events went, not just how fast: a regression that silently
/// reroutes traffic from the ascending lane to the heap keeps the rate
/// plausible while destroying the O(1) path — the fractions catch it.
void export_engine_counters(benchmark::State& state,
                            const sim::Simulator::Stats& stats) {
  const double events =
      stats.events_dispatched > 0
          ? static_cast<double>(stats.events_dispatched)
          : 1.0;
  state.counters["allocs_per_event"] = allocs_per_event(stats);
  state.counters["pool_chunks"] = static_cast<double>(stats.pool_chunks);
  state.counters["now_lane_fraction"] =
      static_cast<double>(stats.now_lane_events) / events;
  state.counters["ascending_fraction"] =
      static_cast<double>(stats.ascending_events) / events;
  state.counters["pool_hit_rate"] =
      static_cast<double>(stats.pool_hits) /
      static_cast<double>(stats.pool_hits + stats.pool_misses > 0
                              ? stats.pool_hits + stats.pool_misses
                              : 1);
  state.counters["inline_callback_fraction"] =
      static_cast<double>(stats.inline_callbacks) / events;
  state.counters["peak_queue_depth"] =
      static_cast<double>(stats.peak_queue_depth);
}

void BM_EventDispatch(benchmark::State& state) {
  // Note: src/obs is compiled in and linked, but no observer is attached —
  // this entry is the "instrumentation disabled" rate the overhead guard in
  // tools/bench_sim_report.py gates against bench_sim_baseline.json.
  const int batch = static_cast<int>(state.range(0));
  sim::Simulator::Stats last_stats;
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i) {
      sim.schedule_at(static_cast<sim::Time>(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.now());
    last_stats = sim.stats();
  }
  state.SetItemsProcessed(state.iterations() * batch);
  export_engine_counters(state, last_stats);
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_EventDispatchZeroDelay(benchmark::State& state) {
  // Self-perpetuating zero-delay chain: every event enters the now lane
  // (FIFO, no heap traffic) — the handoff pattern client/network/runner use
  // between pipeline stages.
  const int batch = static_cast<int>(state.range(0));
  sim::Simulator::Stats last_stats;
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = batch;
    std::function<void()> next = [&] {
      if (remaining-- > 0) sim.schedule_after(0.0, next);
    };
    next();
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
    last_stats = sim.stats();
  }
  state.SetItemsProcessed(state.iterations() * batch);
  export_engine_counters(state, last_stats);
}
BENCHMARK(BM_EventDispatchZeroDelay)->Arg(100000);

void BM_EventDispatchHeavyCallback(benchmark::State& state) {
  // Dispatch rate with callbacks whose captures exceed std::function's
  // small-buffer size, so each Event's fn owns a heap allocation.  Before
  // dispatch_next() moved events off the priority queue, every dispatch
  // deep-copied that allocation; this entry pins the move-out win.
  const int batch = static_cast<int>(state.range(0));
  struct Payload {
    std::uint64_t bytes[8] = {0};  // 64 B: above any libstdc++/libc++ SBO
  };
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i) {
      Payload payload;
      payload.bytes[0] = static_cast<std::uint64_t>(i);
      sim.schedule_at(static_cast<sim::Time>(i),
                      [payload, &sink] { sink += payload.bytes[0]; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventDispatchHeavyCallback)->Arg(1000)->Arg(100000);

void BM_FifoResourceChain(benchmark::State& state) {
  // Self-perpetuating job chain: measures per-job overhead including the
  // completion callback.
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::FifoResource res(sim, "disk");
    int remaining = jobs;
    std::function<void()> submit_next = [&] {
      if (remaining-- > 0) res.submit(1e-4, submit_next);
    };
    submit_next();
    sim.run();
    benchmark::DoNotOptimize(res.busy_time());
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_FifoResourceChain)->Arg(10000);

void BM_FifoResourceChainObs(benchmark::State& state) {
  // Same chain with a flight recorder attached and the resource bound to a
  // track: every submit takes the instrumented branch (histogram update +
  // ring-buffered trace event).  BENCH_sim.json reports the rate next to
  // BM_FifoResourceChain as the enabled-mode observability overhead.
  const int jobs = static_cast<int>(state.range(0));
  std::uint64_t recorded = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    obs::Recorder::Options options;
    options.max_trace_events = 4096;  // ring mode: memory stays bounded
    obs::Recorder recorder(options);
    sim.set_observer(&recorder);
    sim::FifoResource res(sim, "disk");
    res.set_obs_track(recorder.register_server(0, 0, "disk", false));
    int remaining = jobs;
    std::function<void()> submit_next = [&] {
      if (remaining-- > 0) res.submit(1e-4, submit_next);
    };
    submit_next();
    sim.run();
    benchmark::DoNotOptimize(res.busy_time());
    recorded = recorder.trace_events_recorded();
  }
  state.SetItemsProcessed(state.iterations() * jobs);
  state.counters["trace_events_recorded"] = static_cast<double>(recorded);
}
BENCHMARK(BM_FifoResourceChainObs)->Arg(10000);

void BM_ClusterRequests(benchmark::State& state) {
  // End-to-end: client -> layout split -> disks -> NICs -> completion.
  const int requests = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    pfs::ClusterConfig cfg;
    pfs::Cluster cluster(sim, cfg);
    auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
    for (int i = 0; i < requests; ++i) {
      cluster.client(static_cast<std::size_t>(i) % cluster.num_clients())
          .io(*layout, i % 2 ? IoOp::kRead : IoOp::kWrite,
              static_cast<Bytes>(i) * 512 * KiB, 512 * KiB, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_ClusterRequests)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_MultiFileDispatch(benchmark::State& state) {
  // Namespace data path: the same open-loop replay spread round-robin over
  // Arg files, every write mirrored through a chained replica map.  Arg(1)
  // vs Arg(8) isolates what file-id threading and the replica write legs
  // cost per request; tools/bench_sim_report.py exports the pair as the
  // multi_file block of BENCH_sim.json.
  const int files = static_cast<int>(state.range(0));
  const int requests = 1000;
  for (auto _ : state) {
    sim::Simulator sim;
    pfs::ClusterConfig cfg;
    pfs::Cluster cluster(sim, cfg);
    auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
    const pfs::ReplicaMap replicas =
        pfs::ReplicaMap::chained(cluster.num_servers());
    for (int i = 0; i < requests; ++i) {
      cluster.client(static_cast<std::size_t>(i) % cluster.num_clients())
          .io(*layout, i % 2 ? IoOp::kRead : IoOp::kWrite,
              static_cast<Bytes>(i / files) * 512 * KiB, 512 * KiB, [] {},
              static_cast<std::uint32_t>(i % files), &replicas);
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_MultiFileDispatch)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

/// One end-to-end cluster replay under the conservative PDES runtime (or
/// the sequential engine when `sim_threads == 0`).  Returns the engine
/// stats so callers can export window/mailbox counters.
sim::Simulator::Stats run_pdes_cluster(unsigned sim_threads, int requests,
                                       double window_cap) {
  sim::Simulator sim;
  pfs::ClusterConfig cfg;
  cfg.num_hservers = 12;
  cfg.num_sservers = 4;
  cfg.num_clients = 8;
  std::unique_ptr<sim::pdes::Runtime> rt;
  if (sim_threads > 0) {
    sim::pdes::Runtime::Options ro;
    ro.threads = sim_threads;
    ro.lookahead =
        std::min(cfg.network.message_latency, cfg.server_per_stripe_overhead);
    ro.window_cap = window_cap;
    rt = std::make_unique<sim::pdes::Runtime>(
        static_cast<std::uint32_t>(pfs::Cluster::pdes_lp_count(cfg)), ro);
    sim.attach_pdes(rt.get());
  }
  pfs::Cluster cluster(sim, cfg);
  if (rt) cluster.attach_pdes(*rt);
  const auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  for (int i = 0; i < requests; ++i) {
    cluster.client(static_cast<std::size_t>(i) % cluster.num_clients())
        .io(*layout, i % 2 ? IoOp::kRead : IoOp::kWrite,
            static_cast<Bytes>(i) * 512 * KiB, 512 * KiB, [] {});
  }
  sim.run();
  benchmark::DoNotOptimize(sim.now());
  return sim.stats();
}

void BM_PdesScaling(benchmark::State& state) {
  // Strong scaling of one run: the same open-loop cluster replay sharded
  // across 0 (sequential engine) / 1 / 2 / 4 / 8 PDES workers.  Items are
  // *requests*, so items_per_second is comparable across engines even
  // though the PDES path dispatches more raw events (relay hops);
  // tools/bench_sim_report.py derives pdes_speedup_at_8_threads from the
  // Arg(8) / Arg(0) rate ratio.
  const auto sim_threads = static_cast<unsigned>(state.range(0));
  const int requests = 500;
  sim::Simulator::Stats last_stats;
  std::uint64_t events = 0;
  for (auto _ : state) {
    last_stats = run_pdes_cluster(sim_threads, requests, 0.0);
    events += last_stats.events_dispatched;
  }
  state.SetItemsProcessed(state.iterations() * requests);
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["mailbox_enqueues"] =
      static_cast<double>(last_stats.mailbox_enqueues);
  state.counters["window_stalls"] =
      static_cast<double>(last_stats.window_stalls);
  state.counters["lookahead_violations"] =
      static_cast<double>(last_stats.lookahead_violations);
}
BENCHMARK(BM_PdesScaling)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_LookaheadSensitivity(benchmark::State& state) {
  // Window-size sweep at a fixed worker count: Arg is the window cap in
  // microseconds (0 = uncapped, i.e. the full 40 us lookahead for the
  // default gigabit network).  Smaller windows mean more barriers per
  // simulated second — this curve shows how much of the PDES rate is
  // synchronization overhead versus useful event dispatch.
  const double window_cap = static_cast<double>(state.range(0)) * 1e-6;
  const int requests = 500;
  sim::Simulator::Stats last_stats;
  for (auto _ : state) {
    last_stats = run_pdes_cluster(2, requests, window_cap);
  }
  state.SetItemsProcessed(state.iterations() * requests);
  state.counters["window_stalls"] =
      static_cast<double>(last_stats.window_stalls);
  state.counters["mailbox_enqueues"] =
      static_cast<double>(last_stats.mailbox_enqueues);
}
BENCHMARK(BM_LookaheadSensitivity)
    ->Arg(0)
    ->Arg(20)
    ->Arg(10)
    ->Arg(5)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace harl

BENCHMARK_MAIN();
