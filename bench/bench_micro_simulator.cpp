// Micro-benchmarks of the discrete-event substrate: raw event dispatch
// rate, FIFO resource throughput, and end-to-end simulated-request rate of
// the PFS cluster — these bound how large a workload the figure benches can
// replay per wall-clock second.
#include <benchmark/benchmark.h>

#include "src/pfs/cluster.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"

namespace harl {
namespace {

void BM_EventDispatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i) {
      sim.schedule_at(static_cast<sim::Time>(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_FifoResourceChain(benchmark::State& state) {
  // Self-perpetuating job chain: measures per-job overhead including the
  // completion callback.
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::FifoResource res(sim, "disk");
    int remaining = jobs;
    std::function<void()> submit_next = [&] {
      if (remaining-- > 0) res.submit(1e-4, submit_next);
    };
    submit_next();
    sim.run();
    benchmark::DoNotOptimize(res.busy_time());
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_FifoResourceChain)->Arg(10000);

void BM_ClusterRequests(benchmark::State& state) {
  // End-to-end: client -> layout split -> disks -> NICs -> completion.
  const int requests = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    pfs::ClusterConfig cfg;
    pfs::Cluster cluster(sim, cfg);
    auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
    for (int i = 0; i < requests; ++i) {
      cluster.client(static_cast<std::size_t>(i) % cluster.num_clients())
          .io(*layout, i % 2 ? IoOp::kRead : IoOp::kWrite,
              static_cast<Bytes>(i) * 512 * KiB, 512 * KiB, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_ClusterRequests)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace harl

BENCHMARK_MAIN();
