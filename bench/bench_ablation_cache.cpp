// Ablation C (HACache): what does the heterogeneity-aware read cache tier
// buy, and when?  Three studies over the skewed Zipf re-read workload:
//
//  1. Aged-fleet sweep (fixed 64K deployment layout): the whole HDD tier
//     ages 1x/4x while the SSDs stay fresh.  The "cache" arm bolts the
//     fastest SSDs in front as a read cache (the system-default layout
//     cannot re-stripe, so the cache is the only escape from the aged
//     tier).  bench_sim_report.py --cache gates cache-on read throughput
//     >= 1.15x cache-off at 4x aging.
//
//  2. Zero-budget identity: the same arm with cache-budget=0 must be
//     byte-identical to cache-off — enabled() is false, so the entire
//     cache path must be unreachable.  Checked here (hard exit) and
//     re-checked from the JSON by bench_sim_report.py --cache.
//
//  3. Cache-aware planning (HARL scheme): a 3-SServer fleet where two of
//     the three SSDs have aged 4x.  analyze_cached weighs "stripe over
//     all three" against "reserve the fresh SSD as a cache" with the
//     replayed hit rate; the reservation only pays when concentration
//     would NIC-saturate, so the gate is non-inferiority plus a floor on
//     the achieved hit rate (the reservation must actually fire).
#include <cstdlib>
#include <sstream>

#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

workloads::ZipfConfig default_zipf() {
  workloads::ZipfConfig z;
  z.file_size = 256 * MiB;
  z.request_size = 64 * KiB;
  z.processes = 8;
  z.reads_per_process = paper_scale() ? 2048 : 512;
  z.read_phases = 3;
  z.theta = 0.9;
  return z;
}

harness::ExperimentOptions::CacheOptions cache_arm(Bytes budget) {
  harness::ExperimentOptions::CacheOptions cache;
  cache.budget = budget;
  cache.chunk = 64 * KiB;
  cache.devices = 2;
  cache.blind = true;  // fixed layouts produce no plan; the cache bolts on
  return cache;
}

std::string hit_rate_cell(const harness::SchemeResult& r) {
  if (!r.cache || r.cache->tier.lookups == 0) return "n/a";
  return harness::cell(100.0 * static_cast<double>(r.cache->tier.hits) /
                           static_cast<double>(r.cache->tier.lookups),
                       1) +
         "%";
}

void print_cache_lines(const std::vector<harness::SchemeResult>& results) {
  for (const auto& r : results) {
    if (!r.cache) continue;
    std::cout << "  " << r.label << ": hit rate " << hit_rate_cell(r)
              << ", fills " << r.cache->tier.fills_completed << ", evictions "
              << r.cache->tier.evictions << ", fill traffic "
              << mbps(static_cast<double>(r.cache->fill_bytes)) << " MB\n";
  }
}

std::vector<harness::SchemeResult> run() {
  std::vector<harness::SchemeResult> all;
  const auto bundle = harness::zipf_bundle(default_zipf());

  // Study 1+2: aged HDD tier under the fixed 64K deployment layout.
  for (const double spread : {1.0, 4.0}) {
    harness::ExperimentOptions opts = default_options();
    if (spread > 1.0) {
      opts.cluster.hdd_factors.assign(opts.cluster.num_hservers, spread);
    }
    const auto scheme = harness::LayoutScheme::fixed(64 * KiB);

    harness::Experiment off(opts);
    auto results = off.run_all(bundle, {scheme});
    results[0].label = "off";

    harness::ExperimentOptions on_opts = opts;
    on_opts.cache = cache_arm(128 * MiB);
    harness::Experiment on(on_opts);
    auto on_results = on.run_all(bundle, {scheme});
    on_results[0].label = "cache";
    results.push_back(std::move(on_results[0]));

    if (spread > 1.0) {
      // Zero-budget identity: enabled() is false, so this run must retrace
      // the cache-off run event for event.
      harness::ExperimentOptions zero_opts = opts;
      zero_opts.cache = cache_arm(0);
      harness::Experiment zero(zero_opts);
      auto zero_results = zero.run_all(bundle, {scheme});
      zero_results[0].label = "cache0";
      if (zero_results[0].read.makespan != results[0].read.makespan ||
          zero_results[0].write.makespan != results[0].write.makespan) {
        std::cerr << "FATAL: cache-budget=0 run diverged from cache-off "
                     "(read "
                  << zero_results[0].read.makespan << " vs "
                  << results[0].read.makespan << " s, write "
                  << zero_results[0].write.makespan << " vs "
                  << results[0].write.makespan << " s)\n";
        std::exit(1);
      }
      results.push_back(std::move(zero_results[0]));
    }

    std::ostringstream title;
    title << "Read cache over fixed 64K striping (HDD tier aged " << spread
          << "x, Zipf 0.9 re-reads)";
    print_scheme_table(std::cout, title.str(), results, "off");
    print_cache_lines(results);
    const std::string tag =
        "aged" + std::to_string(static_cast<int>(spread)) + "x/";
    for (auto& r : results) {
      r.label = tag + r.label;
      all.push_back(std::move(r));
    }
  }

  // Study 3: cache-aware planning on a 3-SServer fleet, 2 of 3 aged.  More
  // ranks than the deployment's client nodes concentrate load, so striping
  // everything onto the one fresh SSD NIC-saturates — the shape where the
  // bandwidth floor makes the reservation win the sweep.
  {
    harness::ExperimentOptions opts = default_options();
    opts.cluster.num_sservers = 3;
    opts.cluster.ssd_factors = {1.0, 4.0, 4.0};
    workloads::ZipfConfig z = default_zipf();
    z.processes = 32;
    z.reads_per_process = paper_scale() ? 1024 : 256;
    z.read_phases = 4;
    const auto aware_bundle = harness::zipf_bundle(z);
    const auto scheme = harness::LayoutScheme::harl();

    harness::Experiment off(opts);
    auto results = off.run_all(aware_bundle, {scheme});
    results[0].label = "off";

    harness::ExperimentOptions aware_opts = opts;
    aware_opts.cache.budget = 256 * MiB;
    aware_opts.cache.chunk = 64 * KiB;
    aware_opts.cache.devices = 2;
    aware_opts.cache.blind = false;  // the planner decides the reservation
    harness::Experiment aware(aware_opts);
    auto aware_results = aware.run_all(aware_bundle, {scheme});
    aware_results[0].label = "aware";
    results.push_back(std::move(aware_results[0]));

    print_scheme_table(std::cout,
                       "Cache-aware HARL planning (3 SServers, 2 aged 4x)",
                       results, "off");
    print_cache_lines(results);
    std::cout << "  (aware = analyze_cached chose the reservation; layout "
                 "detail shows cache-reserved{...} when it fired)\n";
    for (auto& r : results) {
      r.label = "aware3s/" + r.label;
      all.push_back(std::move(r));
    }
  }
  return all;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "ablation_cache",
                                        harl::bench::run);
}
