// Paper Fig. 1a: per-server I/O time of IOR (16 processes, 512 KiB
// requests) on the hybrid PFS under the default fixed 64 KiB layout,
// normalized to the fastest server.  Servers 1-6 are HServers, 7-8 are
// SServers; the paper observes HServers at roughly 350% of SServer time.
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());
  const auto bundle = harness::ior_bundle(default_ior());
  auto result = exp.run(bundle, harness::LayoutScheme::fixed(64 * KiB));

  double min_time = result.server_io_time.front();
  for (Seconds t : result.server_io_time) min_time = std::min(min_time, t);

  std::cout << "\n== Fig. 1a: per-server I/O time, IOR 16 procs x 512K, "
               "fixed 64K layout ==\n";
  harness::Table table({"server", "type", "io time (s)", "normalized"});
  for (std::size_t i = 0; i < result.server_io_time.size(); ++i) {
    table.add_row({
        std::to_string(i + 1),
        i < 6 ? "HServer" : "SServer",
        harness::cell(result.server_io_time[i], 3),
        harness::cell(result.server_io_time[i] / min_time * 100.0, 0) + "%",
    });
  }
  table.print(std::cout);

  double h_avg = 0.0;
  double s_avg = 0.0;
  for (std::size_t i = 0; i < 6; ++i) h_avg += result.server_io_time[i] / 6.0;
  for (std::size_t i = 6; i < 8; ++i) s_avg += result.server_io_time[i] / 2.0;
  std::cout << "HServer avg / SServer avg = "
            << harness::cell(h_avg / s_avg * 100.0, 0)
            << "% (paper: ~350%)\n";
  return {std::move(result)};
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "fig01a",
                                        harl::bench::run);
}
