// Extension bench: non-contiguous I/O strategies (paper Related Work,
// "I/O Access Reorganization"): naive per-extent requests vs List I/O
// [Ching et al.] vs data sieving [Thakur et al.], swept over access density.
//
// Data sieving trades wasted bytes (holes, and a read-modify-write cycle
// for writes) against request-count reduction; the crossover density is the
// classic result this bench reproduces on the simulated hybrid PFS.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/harness/table.hpp"
#include "src/middleware/mpi_world.hpp"
#include "src/middleware/runner.hpp"
#include "src/pfs/cluster.hpp"
#include "src/sim/simulator.hpp"

namespace harl::bench {
namespace {

/// 8 ranks, each issuing `ops` list operations of `pieces` extents of
/// `piece` bytes separated by `hole` bytes.
std::vector<mw::RankProgram> noncontig_programs(Bytes piece, Bytes hole,
                                                int pieces, int ops) {
  std::vector<mw::RankProgram> programs(8);
  const Bytes op_span = static_cast<Bytes>(pieces) * (piece + hole);
  for (std::size_t rank = 0; rank < 8; ++rank) {
    for (int o = 0; o < ops; ++o) {
      std::vector<mw::Extent> extents;
      const Bytes base =
          (static_cast<Bytes>(rank) * ops + o) * (op_span + 64 * KiB);
      for (int p = 0; p < pieces; ++p) {
        extents.push_back(
            mw::Extent{base + static_cast<Bytes>(p) * (piece + hole), piece});
      }
      programs[rank].push_back(
          mw::IoAction::list_io(o % 2 ? IoOp::kRead : IoOp::kWrite,
                                std::move(extents)));
    }
  }
  return programs;
}

double run(mw::NoncontigStrategy strategy, Bytes piece, Bytes hole) {
  sim::Simulator sim;
  pfs::ClusterConfig cfg;
  pfs::Cluster cluster(sim, cfg);
  mw::MpiWorld world(cluster, 8);
  mw::RunnerOptions opts;
  opts.noncontig = strategy;
  mw::ProgramRunner runner(
      world, "f", pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB),
      nullptr, opts);
  // Tiny pieces come in long runs (many per server: the sieving sweet
  // spot); larger pieces in shorter runs.
  const int pieces = piece < 16 * KiB ? 64 : 16;
  const auto programs = noncontig_programs(piece, hole, pieces, 12);
  const auto result = runner.run(programs);
  return static_cast<double>(result.bytes_read + result.bytes_written) /
         result.makespan / (1024.0 * 1024.0);
}

void run_tables() {
  std::cout << "\n== Extension: non-contiguous I/O strategies vs access "
               "density ==\n";
  harness::Table table({"pattern (piece/hole)", "density", "naive MB/s",
                        "list-io MB/s", "sieving MB/s"});
  struct Pattern {
    Bytes piece;
    Bytes hole;
  };
  for (const Pattern& p :
       {Pattern{4 * KiB, 4 * KiB}, Pattern{48 * KiB, 16 * KiB},
        Pattern{32 * KiB, 32 * KiB}, Pattern{16 * KiB, 48 * KiB},
        Pattern{8 * KiB, 120 * KiB}}) {
    const double density = static_cast<double>(p.piece) /
                           static_cast<double>(p.piece + p.hole);
    table.add_row({
        format_size(p.piece) + "/" + format_size(p.hole),
        harness::cell(density * 100.0, 0) + "%",
        harness::cell(run(mw::NoncontigStrategy::kNaive, p.piece, p.hole), 1),
        harness::cell(run(mw::NoncontigStrategy::kListIo, p.piece, p.hole), 1),
        harness::cell(run(mw::NoncontigStrategy::kDataSieving, p.piece, p.hole),
                      1),
    });
  }
  table.print(std::cout);
  std::cout << "(application-byte throughput.  Sieving wins when many tiny "
               "pieces pile onto each server — one covering access replaces "
               "dozens of positioned ones; with fewer, larger pieces its "
               "wasted hole bytes and write read-modify-write lose to List "
               "I/O — the classic data-sieving crossover)\n";
}

void BM_ListIoDispatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run(mw::NoncontigStrategy::kListIo, 32 * KiB, 32 * KiB));
  }
}
BENCHMARK(BM_ListIoDispatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  harl::bench::run_tables();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
