#include "bench/bench_common.hpp"

namespace harl::bench {

void print_scheme_table(std::ostream& os, const std::string& title,
                        const std::vector<harness::SchemeResult>& results,
                        const std::string& baseline_label) {
  const harness::SchemeResult* baseline = nullptr;
  for (const auto& r : results) {
    if (r.label == baseline_label) baseline = &r;
  }

  os << "\n== " << title << " ==\n";
  harness::Table table({"layout", "read MB/s", "write MB/s", "total MB/s",
                        "vs " + baseline_label, "layout detail"});
  for (const auto& r : results) {
    table.add_row({
        r.label,
        mbps(r.read.throughput()),
        mbps(r.write.throughput()),
        mbps(r.total.throughput()),
        baseline != nullptr
            ? harness::cell_ratio(r.total.throughput(),
                                  baseline->total.throughput())
            : "n/a",
        r.layout_description,
    });
  }
  table.print(os);
}

void register_sim_results(const std::string& prefix,
                          const std::vector<harness::SchemeResult>& results) {
  for (const auto& r : results) {
    const double read = r.read.throughput() / (1024.0 * 1024.0);
    const double write = r.write.throughput() / (1024.0 * 1024.0);
    const double total = r.total.throughput() / (1024.0 * 1024.0);
    benchmark::RegisterBenchmark(
        (prefix + "/" + r.label).c_str(),
        [read, write, total](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(total);
          }
          state.counters["sim_read_MBps"] = read;
          state.counters["sim_write_MBps"] = write;
          state.counters["sim_total_MBps"] = total;
        })
        ->Iterations(1);
  }
}

int figure_bench_main(
    int argc, char** argv, const std::string& prefix,
    const std::function<std::vector<harness::SchemeResult>()>& produce) {
  benchmark::Initialize(&argc, argv);
  const auto results = produce();
  register_sim_results(prefix, results);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace harl::bench
