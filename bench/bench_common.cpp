#include "bench/bench_common.hpp"

#include <memory>
#include <stdexcept>

namespace harl::bench {

namespace {

/// Width requested via threads=N (takes precedence) or HARL_BENCH_THREADS.
std::size_t requested_threads() {
  const char* env = std::getenv("HARL_BENCH_THREADS");
  if (env == nullptr) return 0;
  const long long n = std::stoll(env);
  if (n < 0 || n > 1024) {
    throw std::invalid_argument("HARL_BENCH_THREADS must be in [0, 1024]");
  }
  return static_cast<std::size_t>(n);
}

std::size_t& thread_override() {
  static std::size_t value = 0;
  return value;
}

}  // namespace

ThreadPool* bench_pool() {
  static std::unique_ptr<ThreadPool> pool = [] {
    const std::size_t n =
        thread_override() != 0 ? thread_override() : requested_threads();
    return n > 0 ? std::make_unique<ThreadPool>(n) : nullptr;
  }();
  return pool.get();
}

void print_scheme_table(std::ostream& os, const std::string& title,
                        const std::vector<harness::SchemeResult>& results,
                        const std::string& baseline_label) {
  const harness::SchemeResult* baseline = nullptr;
  for (const auto& r : results) {
    if (r.label == baseline_label) baseline = &r;
  }

  os << "\n== " << title << " ==\n";
  harness::Table table({"layout", "read MB/s", "write MB/s", "total MB/s",
                        "vs " + baseline_label, "layout detail"});
  for (const auto& r : results) {
    table.add_row({
        r.label,
        mbps(r.read.throughput()),
        mbps(r.write.throughput()),
        mbps(r.total.throughput()),
        baseline != nullptr
            ? harness::cell_ratio(r.total.throughput(),
                                  baseline->total.throughput())
            : "n/a",
        r.layout_description,
    });
  }
  table.print(os);
}

void register_sim_results(const std::string& prefix,
                          const std::vector<harness::SchemeResult>& results) {
  for (const auto& r : results) {
    const double read = r.read.throughput() / (1024.0 * 1024.0);
    const double write = r.write.throughput() / (1024.0 * 1024.0);
    const double total = r.total.throughput() / (1024.0 * 1024.0);
    // Cache-enabled runs also expose the directory counters, so report
    // scripts can gate on the achieved hit rate next to the throughput.
    double hit_rate = -1.0;
    double fill_mb = -1.0;
    if (r.cache) {
      hit_rate = r.cache->tier.lookups > 0
                     ? static_cast<double>(r.cache->tier.hits) /
                           static_cast<double>(r.cache->tier.lookups)
                     : 0.0;
      fill_mb = static_cast<double>(r.cache->fill_bytes) / (1024.0 * 1024.0);
    }
    benchmark::RegisterBenchmark(
        (prefix + "/" + r.label).c_str(),
        [read, write, total, hit_rate, fill_mb](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(total);
          }
          state.counters["sim_read_MBps"] = read;
          state.counters["sim_write_MBps"] = write;
          state.counters["sim_total_MBps"] = total;
          if (hit_rate >= 0.0) {
            state.counters["sim_cache_hit_rate"] = hit_rate;
            state.counters["sim_cache_fill_MB"] = fill_mb;
          }
        })
        ->Iterations(1);
  }
}

int figure_bench_main(
    int argc, char** argv, const std::string& prefix,
    const std::function<std::vector<harness::SchemeResult>()>& produce) {
  // Strip threads=N before google-benchmark sees the argument list (it
  // rejects flags it does not know).  Must happen before the first
  // bench_pool() call — the pool is created on first use.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("threads=", 0) == 0) {
      const long long n = std::stoll(arg.substr(8));
      if (n < 0 || n > 1024) {
        std::cerr << prefix << ": threads must be in [0, 1024]\n";
        return 1;
      }
      thread_override() = static_cast<std::size_t>(n);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  const auto results = produce();
  register_sim_results(prefix, results);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace harl::bench
