// Paper Fig. 8: IOR throughput with a varied number of processes
// (8/32/128/256 at 512 KiB requests).  HARL's advantage should hold at
// every process count.
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());
  const std::vector<std::size_t> process_counts = {8, 32, 128, 256};

  std::vector<harness::SchemeResult> all;
  harness::Table table({"procs", "64K read", "64K write", "HARL read",
                        "HARL write", "HARL vs 64K"});

  for (std::size_t procs : process_counts) {
    workloads::IorConfig ior = default_ior();
    ior.processes = procs;
    if (!paper_scale()) {
      // Keep total request count roughly constant across process counts.
      ior.requests_per_process = std::max<std::size_t>(8, 1536 / procs);
    }
    const auto bundle = harness::ior_bundle(ior);

    auto fixed64 = exp.run(bundle, harness::LayoutScheme::fixed(64 * KiB));
    auto harl = exp.run(bundle, harness::LayoutScheme::harl());
    table.add_row({
        std::to_string(procs),
        mbps(fixed64.read.throughput()),
        mbps(fixed64.write.throughput()),
        mbps(harl.read.throughput()),
        mbps(harl.write.throughput()),
        harness::cell_ratio(harl.total.throughput(),
                            fixed64.total.throughput()),
    });
    fixed64.label = "p" + std::to_string(procs) + "/64K";
    harl.label = "p" + std::to_string(procs) + "/HARL";
    all.push_back(std::move(fixed64));
    all.push_back(std::move(harl));
  }

  std::cout << "\n== Fig. 8: IOR throughput vs number of processes ==\n";
  table.print(std::cout);
  return all;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "fig08",
                                        harl::bench::run);
}
