// Model-accuracy study: how well does the paper's analytic cost (Eq. 7/8)
// predict the *simulated* completion time of a single uncontended request?
//
// For a grid of request sizes x layouts, one request is issued against an
// otherwise-idle simulated cluster and its completion latency is compared
// with the calibrated model's prediction.  This quantifies the residual the
// optimizer tolerates; see EXPERIMENTS.md ("Calibration provenance").
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "src/common/rng.hpp"
#include "src/harness/calibration.hpp"
#include "src/harness/table.hpp"
#include "src/pfs/cluster.hpp"
#include "src/sim/simulator.hpp"

namespace harl::bench {
namespace {

/// Mean simulated completion latency of single requests at random aligned
/// offsets (no queueing: one request at a time).
Seconds simulated_latency(core::StripePair hs, IoOp op, Bytes size,
                          int samples) {
  Rng rng(77);
  Seconds total = 0.0;
  for (int i = 0; i < samples; ++i) {
    sim::Simulator sim;
    pfs::ClusterConfig cfg;
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    pfs::Cluster cluster(sim, cfg);
    auto layout = pfs::make_two_tier_layout(6, hs.h, 2, hs.s);
    const Bytes offset = rng.uniform_u64(0, 4096) * size;
    Seconds start = 0.0;
    Seconds end = 0.0;
    cluster.client(0).io(*layout, op, offset, size, [&] { end = sim.now(); });
    sim.run();
    total += end - start;
  }
  return total / samples;
}

void run_tables() {
  pfs::ClusterConfig cluster;
  const core::CostParams params = harness::calibrate(cluster);

  std::cout << "\n== Model accuracy: predicted vs simulated single-request "
               "latency ==\n";
  harness::Table table({"request", "layout", "op", "model (ms)", "sim (ms)",
                        "rel. error"});
  double worst = 0.0;
  for (Bytes size : {128 * KiB, 512 * KiB, 2 * MiB}) {
    for (core::StripePair hs :
         {core::StripePair{64 * KiB, 64 * KiB},
          core::StripePair{32 * KiB, 160 * KiB},
          core::StripePair{0, 64 * KiB}}) {
      for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
        // Model cost averaged over the same offset distribution.
        Rng rng(77);
        Seconds model = 0.0;
        const int samples = 64;
        for (int i = 0; i < samples; ++i) {
          const Bytes offset = rng.uniform_u64(0, 4096) * size;
          model += core::request_cost(params, op, offset, size, hs);
        }
        model /= samples;
        const Seconds sim_latency = simulated_latency(hs, op, size, samples);
        const double rel = std::abs(model - sim_latency) / sim_latency;
        worst = std::max(worst, rel);
        table.add_row({
            format_size(size),
            "{" + format_size(hs.h) + "," + format_size(hs.s) + "}",
            std::string(to_string(op)),
            harness::cell(model * 1e3, 2),
            harness::cell(sim_latency * 1e3, 2),
            harness::cell(rel * 100.0, 1) + "%",
        });
      }
    }
  }
  table.print(std::cout);
  std::cout << "worst relative error: " << harness::cell(worst * 100.0, 1)
            << "% (uncontended; queueing under load adds unmodeled delay "
               "for every candidate alike)\n";
}

void BM_SingleRequestSim(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulated_latency(
        core::StripePair{32 * KiB, 160 * KiB}, IoOp::kRead, 512 * KiB, 4));
  }
}
BENCHMARK(BM_SingleRequestSim)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  harl::bench::run_tables();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
