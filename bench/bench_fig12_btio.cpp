// Paper Fig. 12: BTIO (NAS BT-IO, full subtype) aggregate throughput with
// 4/16/64 processes over six HServers and two SServers.  The paper reports
// HARL improving 163.5% / 116.9% / 114.8% over the 64K default.
//
// Geometry note: the bench uses grid=81 so total I/O matches the paper's
// reported 1.69 GB (standard class A moves 2 x 0.42 GB; see
// workloads/btio.hpp).
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());
  std::vector<harness::SchemeResult> all;

  harness::Table table({"procs", "64K MB/s", "256K MB/s", "HARL MB/s",
                        "HARL vs 64K", "HARL layout"});
  for (std::size_t procs : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
    workloads::BtioConfig btio = workloads::btio_paper_config(procs);
    if (!paper_scale()) btio.max_dumps = 6;
    const auto bundle = harness::btio_bundle(btio);

    auto fixed64 = exp.run(bundle, harness::LayoutScheme::fixed(64 * KiB));
    auto fixed256 = exp.run(bundle, harness::LayoutScheme::fixed(256 * KiB));
    auto harl = exp.run(bundle, harness::LayoutScheme::harl());
    table.add_row({
        std::to_string(procs),
        mbps(fixed64.total.throughput()),
        mbps(fixed256.total.throughput()),
        mbps(harl.total.throughput()),
        harness::cell_ratio(harl.total.throughput(),
                            fixed64.total.throughput()),
        harl.layout_description,
    });
    const std::string tag = "p" + std::to_string(procs);
    fixed64.label = tag + "/64K";
    fixed256.label = tag + "/256K";
    harl.label = tag + "/HARL";
    all.push_back(std::move(fixed64));
    all.push_back(std::move(fixed256));
    all.push_back(std::move(harl));
  }

  std::cout << "\n== Fig. 12: BTIO aggregate throughput by layout ==\n";
  table.print(std::cout);
  return all;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "fig12",
                                        harl::bench::run);
}
