// Ablation A (not in the paper): how much of HARL's gain comes from
// *region-level* division vs heterogeneity-aware striping alone?  Compares
// full HARL against the file-level ablation (one optimized stripe pair for
// the whole file) on non-uniform workloads of increasing heterogeneity.
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());
  std::vector<harness::SchemeResult> all;

  struct Case {
    std::string name;
    workloads::MultiRegionConfig config;
  };
  std::vector<Case> cases;
  {
    // Mildly non-uniform: request sizes within one order of magnitude.
    workloads::MultiRegionConfig mild;
    mild.processes = 16;
    mild.regions = {{512 * MiB, 256 * KiB}, {1 * GiB, 1 * MiB}};
    mild.coverage = paper_scale() ? 1.0 : 0.08;
    cases.push_back({"mild", mild});
  }
  {
    // Strongly non-uniform: a tiny-request region (SServer-only optimal)
    // next to a huge-request region (hybrid optimal).
    workloads::MultiRegionConfig strong;
    strong.processes = 16;
    strong.regions = {
        {128 * MiB, 64 * KiB}, {1 * GiB, 512 * KiB}, {2 * GiB, 2 * MiB}};
    strong.coverage = paper_scale() ? 1.0 : 0.08;
    cases.push_back({"strong", strong});
  }

  for (const auto& c : cases) {
    const auto bundle = harness::multiregion_bundle(c.config);
    auto results = exp.run_all(
        bundle, {harness::LayoutScheme::fixed(64 * KiB),
                 harness::LayoutScheme::file_level_harl(),
                 harness::LayoutScheme::harl()});
    print_scheme_table(std::cout,
                       "Ablation: region-level vs file-level (" + c.name +
                           " heterogeneity)",
                       results);
    for (auto& r : results) {
      r.label = c.name + "/" + r.label;
      all.push_back(std::move(r));
    }
  }
  std::cout << "(HARL-file = heterogeneity-aware stripes, single region; "
               "the gap to HARL is the value of region division)\n";
  return all;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "ablation_regions",
                                        harl::bench::run);
}
