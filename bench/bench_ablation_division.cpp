// Ablation: Algorithm 1 (CV-driven region division) vs the fixed-chunk
// strawman the paper rejects in Section III-C ("While this method is
// simple, it is difficult to select a proper region size for varying I/O
// patterns").  The same non-uniform workload — whose phase boundaries do
// NOT align with any fixed chunk grid — is planned with both dividers and
// measured end to end.
#include "bench/bench_common.hpp"

#include "src/middleware/mpi_world.hpp"

namespace harl::bench {
namespace {

/// Three workload phases at deliberately chunk-misaligned boundaries.
std::vector<trace::TraceRecord> misaligned_trace() {
  std::vector<trace::TraceRecord> records;
  auto append = [&records](Bytes base, Bytes extent, Bytes req) {
    for (Bytes off = 0; off + req <= extent; off += req) {
      trace::TraceRecord r;
      r.op = (off / req) % 2 ? IoOp::kRead : IoOp::kWrite;
      r.offset = base + off;
      r.size = req;
      records.push_back(r);
    }
  };
  append(0, 100 * MiB, 128 * KiB);                 // ends inside chunk 1
  append(100 * MiB, 300 * MiB, 1 * MiB);           // ends inside chunk 6
  append(400 * MiB, 600 * MiB, 2 * MiB);
  return records;
}

double run_with_plan(const core::Plan& plan,
                     const std::vector<trace::TraceRecord>& requests) {
  sim::Simulator sim;
  pfs::ClusterConfig cfg;
  pfs::Cluster cluster(sim, cfg);
  mw::MpiWorld world(cluster, 16);
  mw::ProgramRunner runner(world, "data", plan.rst.to_layout(6, 2));
  std::vector<mw::RankProgram> programs(16);
  Bytes total = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    programs[i % 16].push_back(
        mw::IoAction::io(requests[i].op, requests[i].offset, requests[i].size));
    total += requests[i].size;
  }
  const auto result = runner.run(programs);
  return static_cast<double>(total) / result.makespan / (1024.0 * 1024.0);
}

void run_tables() {
  pfs::ClusterConfig cluster;
  const core::CostParams params = harness::calibrate(cluster);
  const auto records = misaligned_trace();

  std::cout << "\n== Ablation: Algorithm 1 vs fixed-chunk region division ==\n";
  harness::Table table({"divider", "regions", "sim MB/s"});

  {
    const core::Plan plan = core::analyze(records, params);
    table.add_row({"Algorithm 1 (CV-driven)", std::to_string(plan.rst.size()),
                   harness::cell(run_with_plan(plan, records), 1)});
  }
  for (Bytes chunk : {64 * MiB, 256 * MiB}) {
    const core::Plan plan =
        core::analyze_fixed_regions(records, params, chunk);
    table.add_row({"fixed " + format_size(chunk) + " chunks",
                   std::to_string(plan.rst.size()),
                   harness::cell(run_with_plan(plan, records), 1)});
  }
  {
    const core::Plan plan = core::analyze_file_level(records, params);
    table.add_row({"none (file-level)", std::to_string(plan.rst.size()),
                   harness::cell(run_with_plan(plan, records), 1)});
  }
  table.print(std::cout);
  std::cout << "(among dividers, Algorithm 1 wins: fixed chunks cut inside "
               "workload phases and mix dissimilar requests.  The file-level "
               "row is competitive in this substrate because round-robin "
               "aggregation makes equal-ratio stripe pairs behave alike — "
               "see the region-level ablation discussion in EXPERIMENTS.md)\n";
}

void BM_DividerComparison(benchmark::State& state) {
  const auto records = misaligned_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::divide_regions(records));
    benchmark::DoNotOptimize(core::divide_regions_fixed(records, 64 * MiB));
  }
}
BENCHMARK(BM_DividerComparison)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  harl::bench::run_tables();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
