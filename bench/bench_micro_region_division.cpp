// Micro-benchmarks of Algorithm 1 (CV-driven region division) on large
// traces: runtime scales linearly with trace length per tuning round.
#include <benchmark/benchmark.h>

#include "src/core/region_divider.hpp"
#include "src/workloads/random_workload.hpp"

namespace harl::core {
namespace {

std::vector<trace::TraceRecord> sorted_trace(std::size_t n, bool phased) {
  workloads::RandomWorkloadConfig cfg;
  cfg.requests = n;
  cfg.file_size = 64 * GiB;
  cfg.seed = 99;
  if (phased) {
    // Two size populations, separated in file space, to force real splits:
    // overwrite sizes after generation.
    cfg.min_request = 64 * KiB;
    cfg.max_request = 64 * KiB;
  }
  auto records = workloads::make_random_trace(cfg);
  if (phased) {
    for (auto& r : records) {
      if (r.offset > 32 * GiB) r.size = 2 * MiB;
    }
  }
  std::sort(records.begin(), records.end(), trace::ByOffset{});
  return records;
}

void BM_DivideRegions_Uniform(benchmark::State& state) {
  const auto records = sorted_trace(static_cast<std::size_t>(state.range(0)),
                                    /*phased=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(divide_regions(records));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_DivideRegions_Uniform)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_DivideRegions_Phased(benchmark::State& state) {
  const auto records = sorted_trace(static_cast<std::size_t>(state.range(0)),
                                    /*phased=*/true);
  std::size_t region_count = 0;
  for (auto _ : state) {
    const auto division = divide_regions(records);
    region_count = division.regions.size();
    benchmark::DoNotOptimize(division);
  }
  state.counters["regions"] = static_cast<double>(region_count);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_DivideRegions_Phased)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace harl::core

BENCHMARK_MAIN();
