// Micro-benchmarks of Algorithm 2 (region stripe-size determination):
// runtime vs grid step, request count, and thread-pool sharding.  The paper
// notes the search runs offline and "the computational overhead ... is
// acceptable"; these benches quantify that.
#include <benchmark/benchmark.h>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/stripe_optimizer.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {
namespace {

CostParams bench_params() {
  CostParams p = make_cost_params(6, 2, storage::hdd_profile(),
                                  storage::pcie_ssd_profile(),
                                  1.0 / (117.0 * 1024 * 1024));
  for (storage::OpProfile* prof : {&p.hserver_read, &p.hserver_write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.4;
    prof->startup_max *= 0.4;
  }
  return p;
}

std::vector<FileRequest> requests(std::size_t n, Bytes size) {
  Rng rng(7);
  std::vector<FileRequest> reqs;
  reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs.push_back(FileRequest{i % 2 ? IoOp::kRead : IoOp::kWrite,
                               rng.uniform_u64(0, 8192) * size, size});
  }
  return reqs;
}

void BM_OptimizeRegion_StepSweep(benchmark::State& state) {
  const CostParams p = bench_params();
  const auto reqs = requests(256, 512 * KiB);
  OptimizerOptions opts;
  opts.step = static_cast<Bytes>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_region(p, reqs, 512.0 * KiB, opts));
  }
  // Finer steps evaluate quadratically more candidates.
  OptimizerOptions probe = opts;
  state.counters["candidates"] = static_cast<double>(
      optimize_region(p, reqs, 512.0 * KiB, probe).candidates_evaluated);
}
BENCHMARK(BM_OptimizeRegion_StepSweep)
    ->Arg(4 * KiB)
    ->Arg(16 * KiB)
    ->Arg(64 * KiB)
    ->Unit(benchmark::kMillisecond);

void BM_OptimizeRegion_RequestSweep(benchmark::State& state) {
  const CostParams p = bench_params();
  const auto reqs = requests(static_cast<std::size_t>(state.range(0)), 512 * KiB);
  OptimizerOptions opts;
  opts.step = 16 * KiB;
  opts.max_requests = 0;  // no sampling: cost scales linearly with requests
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_region(p, reqs, 512.0 * KiB, opts));
  }
}
BENCHMARK(BM_OptimizeRegion_RequestSweep)
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_OptimizeRegion_Parallel(benchmark::State& state) {
  const CostParams p = bench_params();
  const auto reqs = requests(512, 512 * KiB);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  OptimizerOptions opts;
  opts.pool = state.range(0) > 1 ? &pool : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_region(p, reqs, 512.0 * KiB, opts));
  }
}
BENCHMARK(BM_OptimizeRegion_Parallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_OptimizeRegion_Sampling(benchmark::State& state) {
  const CostParams p = bench_params();
  const auto reqs = requests(8192, 512 * KiB);
  OptimizerOptions opts;
  opts.step = 16 * KiB;
  opts.max_requests = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_region(p, reqs, 512.0 * KiB, opts));
  }
}
BENCHMARK(BM_OptimizeRegion_Sampling)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(0)  // unsampled
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace harl::core

BENCHMARK_MAIN();
