// Micro-benchmarks of the analytic cost model: geometry computation and
// full request costing.  Algorithm 2 calls these millions of times per
// region, so their per-call cost bounds the Analysis Phase runtime.
#include <benchmark/benchmark.h>

#include "src/common/rng.hpp"
#include "src/core/cost_model.hpp"
#include "src/core/tiered_cost_model.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {
namespace {

CostParams bench_params() {
  CostParams p = make_cost_params(6, 2, storage::hdd_profile(),
                                  storage::pcie_ssd_profile(),
                                  1.0 / (117.0 * 1024 * 1024));
  p.per_stripe_overhead = 50e-6;
  return p;
}

void BM_RequestGeometry(benchmark::State& state) {
  const StripePair hs{static_cast<Bytes>(state.range(0)),
                      static_cast<Bytes>(state.range(1))};
  Rng rng(1);
  Bytes offset = 0;
  for (auto _ : state) {
    offset = (offset + 1315423911u) & ((1u << 30) - 1);
    benchmark::DoNotOptimize(request_geometry(offset, 512 * KiB, hs, 6, 2));
  }
}
BENCHMARK(BM_RequestGeometry)
    ->Args({64 * KiB, 64 * KiB})
    ->Args({32 * KiB, 160 * KiB})
    ->Args({0, 64 * KiB});

void BM_RequestCost(benchmark::State& state) {
  const CostParams p = bench_params();
  const StripePair hs{static_cast<Bytes>(state.range(0)),
                      static_cast<Bytes>(state.range(1))};
  Bytes offset = 0;
  for (auto _ : state) {
    offset = (offset + 2654435761u) & ((1u << 30) - 1);
    benchmark::DoNotOptimize(
        request_cost(p, IoOp::kRead, offset, 512 * KiB, hs));
  }
}
BENCHMARK(BM_RequestCost)
    ->Args({64 * KiB, 64 * KiB})
    ->Args({32 * KiB, 160 * KiB});

void BM_RequestCostBreakdown(benchmark::State& state) {
  const CostParams p = bench_params();
  Bytes offset = 0;
  for (auto _ : state) {
    offset = (offset + 40503u * 4096u) & ((1u << 30) - 1);
    benchmark::DoNotOptimize(request_cost_breakdown(
        p, IoOp::kWrite, offset, 512 * KiB, {36 * KiB, 148 * KiB}));
  }
}
BENCHMARK(BM_RequestCostBreakdown);

void BM_TieredRequestCost(benchmark::State& state) {
  TieredCostParams p;
  p.t = 1.0 / (117.0 * 1024 * 1024);
  TierSpec hdd{6, storage::hdd_profile()};
  TierSpec sata{2, storage::sata_ssd_profile()};
  TierSpec nvme{2, storage::nvme_ssd_profile()};
  p.tiers = {hdd, sata, nvme};
  const std::vector<Bytes> stripes = {16 * KiB, 64 * KiB, 256 * KiB};
  Bytes offset = 0;
  for (auto _ : state) {
    offset = (offset + 97u * 4096u) & ((1u << 30) - 1);
    benchmark::DoNotOptimize(
        tiered_request_cost(p, IoOp::kRead, offset, 1 * MiB, stripes));
  }
}
BENCHMARK(BM_TieredRequestCost);

void BM_Fig5ClosedForm(benchmark::State& state) {
  const StripePair hs{64 * KiB, 160 * KiB};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fig5_case_a_geometry(10 * KiB, 100 * KiB, hs, 6, 2));
  }
}
BENCHMARK(BM_Fig5ClosedForm);

}  // namespace
}  // namespace harl::core

BENCHMARK_MAIN();
