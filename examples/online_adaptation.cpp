// Scenario: a long-running service whose I/O pattern drifts (paper future
// work: on-line data layout).
//
// The service starts with small random reads (the layout installed by the
// offline pipeline is SServer-only), then switches to large analytical
// scans.  An OnlineAdvisor watches the live request stream; when a window
// of requests would be materially cheaper under a re-optimized layout, it
// recommends a re-layout, which we adopt and measure.
//
// Run: ./build/examples/online_adaptation
#include <iostream>

#include "src/common/rng.hpp"
#include "src/core/online_advisor.hpp"
#include "src/harness/calibration.hpp"
#include "src/harness/table.hpp"
#include "src/pfs/cluster.hpp"
#include "src/sim/simulator.hpp"

using namespace harl;

namespace {

std::vector<trace::TraceRecord> phase(Bytes request, std::size_t count,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<trace::TraceRecord> out;
  for (std::size_t i = 0; i < count; ++i) {
    trace::TraceRecord r;
    r.op = i % 4 == 0 ? IoOp::kWrite : IoOp::kRead;  // read-mostly service
    r.offset = rng.uniform_u64(0, 8192) * request;
    r.size = request;
    out.push_back(r);
  }
  return out;
}

double throughput(const std::vector<trace::TraceRecord>& reqs,
                  std::shared_ptr<const pfs::Layout> layout) {
  sim::Simulator sim;
  pfs::ClusterConfig cfg;
  pfs::Cluster cluster(sim, cfg);
  Bytes total = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    total += reqs[i].size;
    cluster.client(i % cluster.num_clients())
        .io(*layout, reqs[i].op, reqs[i].offset, reqs[i].size, [] {});
  }
  sim.run();
  return static_cast<double>(total) / sim.now() / (1024.0 * 1024.0);
}

}  // namespace

int main() {
  pfs::ClusterConfig cluster;
  const core::CostParams params = harness::calibrate(cluster);

  // Offline pipeline on the service's historical (small-request) profile.
  const auto history = phase(128 * KiB, 600, 51);
  const core::Plan initial = core::analyze(history, params);
  std::cout << "Installed layout (from historical trace): "
            << initial.rst.to_layout(6, 2)->describe() << "\n";

  // The workload drifts: large analytical scans.
  const auto drifted = phase(2 * MiB, 400, 52);

  core::OnlineAdvisor::Options opts;
  opts.window = 100;
  core::OnlineAdvisor advisor(params, initial.rst, opts);

  std::size_t when = 0;
  std::optional<core::OnlineAdvisor::Recommendation> rec;
  for (std::size_t i = 0; i < drifted.size() && !rec; ++i) {
    rec = advisor.observe(drifted[i]);
    when = i + 1;
  }

  if (!rec) {
    std::cout << "No drift detected (the old layout still fits).\n";
    return 0;
  }
  std::cout << "Drift detected after " << when << " requests: model cost "
            << harness::cell(rec->current_cost, 3) << " s -> "
            << harness::cell(rec->optimized_cost, 3) << " s ("
            << harness::cell(rec->gain * 100.0, 1) << "% cheaper), "
            << "migration touches up to "
            << format_size(rec->affected_extent) << "\n";
  advisor.adopt(*rec);
  const auto adapted = advisor.current().to_layout(6, 2);
  std::cout << "Adopted layout: " << adapted->describe() << "\n\n";

  harness::Table table({"strategy", "drifted-phase MB/s"});
  const double stale = throughput(drifted, initial.rst.to_layout(6, 2));
  const double fresh = throughput(drifted, adapted);
  table.add_row({"keep stale layout", harness::cell(stale, 1)});
  table.add_row({"adopt recommendation", harness::cell(fresh, 1)});
  table.print(std::cout);
  std::cout << "Re-layout gain: "
            << harness::cell((fresh / stale - 1.0) * 100.0, 1) << "%\n";
  return 0;
}
