// Scenario: a BT-style scientific application checkpointing through
// collective MPI-IO — the workload class the paper evaluates with BTIO.
//
// This example exercises the *deployment* path of HARL rather than the
// experiment harness: the first execution is traced, the Analysis Phase
// runs offline, the resulting RST and R2F artifacts are saved next to the
// application (as the paper describes), and a later execution loads them at
// "MPI_Init" time through the HarlDriver and runs on the optimized layout.
//
// Run: ./build/examples/checkpoint_pipeline [workdir]
#include <filesystem>
#include <iostream>

#include "src/harness/calibration.hpp"
#include "src/harness/table.hpp"
#include "src/middleware/harl_driver.hpp"
#include "src/middleware/mpi_world.hpp"
#include "src/middleware/runner.hpp"
#include "src/pfs/cluster.hpp"
#include "src/trace/analysis.hpp"
#include "src/trace/trace_io.hpp"
#include "src/workloads/btio.hpp"

using namespace harl;

namespace {

constexpr char kFileName[] = "checkpoint.out";

workloads::BtioConfig app_config() {
  workloads::BtioConfig btio;
  btio.processes = 16;
  btio.grid = 48;
  btio.time_steps = 40;
  btio.write_interval = 5;
  btio.compute_per_step = 0.01;  // interleaved computation
  return btio;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "harl_checkpoint")
                     .string();
  std::filesystem::create_directories(workdir);
  const auto programs = workloads::make_btio_programs(app_config());

  // ---------------------------------------------------------------------
  // First execution: default layout, IOSIG-like collector attached.
  // ---------------------------------------------------------------------
  pfs::ClusterConfig cluster_config;
  trace::TraceCollector collector;
  Seconds first_makespan = 0.0;
  {
    sim::Simulator sim;
    pfs::Cluster cluster(sim, cluster_config);
    mw::MpiWorld world(cluster, app_config().processes);
    auto default_layout =
        pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
    mw::ProgramRunner runner(world, kFileName, default_layout, &collector);
    first_makespan = runner.run(programs).makespan;
  }
  const auto sorted = collector.sorted_by_offset();
  std::cout << "First (traced) execution on the 64K default layout: "
            << harness::cell(first_makespan, 2) << " s simulated\n";
  std::cout << trace::describe(trace::characterize(sorted)) << "\n";

  // Persist the trace like a real tracing tool would.
  const std::string trace_path = workdir + "/" + kFileName + ".trace.csv";
  trace::save_trace(trace_path, sorted);
  std::cout << "Trace saved to " << trace_path << "\n\n";

  // ---------------------------------------------------------------------
  // Analysis Phase (offline): calibrate, divide, optimize, persist RST+R2F.
  // ---------------------------------------------------------------------
  const core::CostParams params = harness::calibrate(cluster_config);
  const auto loaded = trace::load_trace(trace_path);
  const core::Plan plan = core::analyze(loaded, params);
  mw::HarlDriver::save(workdir, kFileName, plan);
  std::cout << "Analysis Phase: " << plan.regions.size() << " region(s), "
            << plan.rst.size() << " after merging; RST/R2F written to "
            << workdir << "\n";
  for (const auto& region : plan.regions) {
    std::cout << "  [" << format_size(region.offset) << ", "
              << format_size(region.end) << ") -> {"
              << format_size(region.stripes[0]) << ", "
              << format_size(region.stripes[1]) << "}\n";
  }

  // ---------------------------------------------------------------------
  // Later execution: load the artifacts at init time and run optimized.
  // ---------------------------------------------------------------------
  Seconds optimized_makespan = 0.0;
  {
    sim::Simulator sim;
    pfs::Cluster cluster(sim, cluster_config);
    auto layout = mw::HarlDriver::load_and_install(workdir, kFileName, cluster);
    mw::MpiWorld world(cluster, app_config().processes);
    mw::ProgramRunner runner(world, kFileName, layout);
    optimized_makespan = runner.run(programs).makespan;
  }
  std::cout << "\nOptimized execution on the HARL layout: "
            << harness::cell(optimized_makespan, 2) << " s simulated\n";
  std::cout << "Speedup vs first execution: "
            << harness::cell(first_makespan / optimized_makespan, 2) << "x\n";
  return 0;
}
