// Scenario: SSD capacity planning (paper Section IV-D, "Discussion").
//
// HARL deliberately gives SServers larger stripes, so they store a
// disproportionate share of each file.  This example quantifies that
// footprint for an optimized layout and, when the SServers' capacity budget
// is exceeded, plans an SServer->HServer migration that demotes the coldest
// regions first — the mitigation the paper sketches.
//
// Run: ./build/examples/capacity_planning [ssd-capacity, e.g. 2G]
#include <iostream>

#include "src/harness/calibration.hpp"
#include "src/core/planner.hpp"
#include "src/harness/table.hpp"
#include "src/pfs/space.hpp"

using namespace harl;

namespace {

/// A hot small-request region, a warm medium region and a cold archive
/// region — heat comes from access counts in the trace.
std::vector<trace::TraceRecord> workload_trace() {
  std::vector<trace::TraceRecord> records;
  auto append = [&records](Bytes base, Bytes extent, Bytes request,
                           int passes) {
    for (int p = 0; p < passes; ++p) {
      for (Bytes off = 0; off + request <= extent; off += request) {
        trace::TraceRecord r;
        r.op = p % 2 ? IoOp::kRead : IoOp::kWrite;
        r.offset = base + off;
        r.size = request;
        records.push_back(r);
      }
    }
  };
  append(0, 512 * MiB, 256 * KiB, 4);              // hot
  append(512 * MiB, 2 * GiB, 1 * MiB, 2);          // warm
  append(2 * GiB + 512 * MiB, 4 * GiB, 2 * MiB, 1);  // cold archive
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  const Bytes file_size = 6 * GiB + 512 * MiB;
  const Bytes ssd_capacity = argc > 1 ? parse_size(argv[1]) : 2 * GiB;

  pfs::ClusterConfig cluster;
  const auto records = workload_trace();
  const core::Plan plan = core::analyze(records, harness::calibrate(cluster));
  const auto layout =
      plan.rst.to_layout(cluster.num_hservers, cluster.num_sservers);

  // --- footprint under the optimized layout ---------------------------
  const pfs::SpaceUsage usage = pfs::storage_footprint(*layout, file_size);
  std::cout << "File size: " << format_size(file_size) << "\n";
  harness::Table per_server({"server", "type", "stored"});
  for (std::size_t i = 0; i < usage.per_server.size(); ++i) {
    per_server.add_row({std::to_string(i),
                        i < cluster.num_hservers ? "HServer" : "SServer",
                        format_size(usage.per_server[i])});
  }
  per_server.print(std::cout);
  const Bytes ssd_bytes = usage.sserver_bytes(cluster.num_hservers);
  std::cout << "SServer total: " << format_size(ssd_bytes)
            << " (capacity budget: " << format_size(ssd_capacity) << ")\n\n";

  if (ssd_bytes <= ssd_capacity) {
    std::cout << "Within budget: no migration needed.\n";
    return 0;
  }

  // --- migration planning: demote the coldest regions -----------------
  std::vector<pfs::RegionHeat> heat;
  for (std::size_t i = 0; i < layout->region_count(); ++i) {
    pfs::RegionHeat h;
    h.region = i;
    h.bytes_accessed = 0;
    heat.push_back(h);
  }
  for (const auto& r : records) {
    const std::size_t region = layout->region_of(r.offset);
    heat[region].bytes_accessed += r.size;
  }

  const pfs::MigrationPlan migration =
      pfs::plan_migration(*layout, file_size, ssd_capacity, heat);
  std::cout << "Migration plan (coldest regions demoted to HServers first):\n";
  harness::Table table({"region", "offset", "H stripe", "S stripe", "action"});
  for (std::size_t i = 0; i < migration.regions.size(); ++i) {
    const auto& spec = migration.regions[i];
    const bool demoted =
        std::find(migration.demoted.begin(), migration.demoted.end(), i) !=
        migration.demoted.end();
    table.add_row({std::to_string(i), format_size(spec.offset),
                   format_size(spec.h()), format_size(spec.s()),
                   demoted ? "demoted to HServers" : "unchanged"});
  }
  table.print(std::cout);
  std::cout << "SServer bytes: " << format_size(migration.sserver_bytes_before)
            << " -> " << format_size(migration.sserver_bytes_after) << "\n";
  return 0;
}
