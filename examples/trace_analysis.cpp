// Offline trace-analysis tool: the Analysis Phase as a standalone utility.
//
// Reads an I/O trace (CSV or binary, as written by trace::save_trace), or
// generates a demo trace when no path is given; characterizes the workload,
// runs Algorithm 1 + Algorithm 2 against a calibrated cluster model, prints
// the resulting region plan, and optionally writes the RST.
//
// Usage:  ./build/examples/trace_analysis [trace-file] [rst-output]
#include <fstream>
#include <iostream>

#include "src/harness/calibration.hpp"
#include "src/core/planner.hpp"
#include "src/harness/table.hpp"
#include "src/trace/analysis.hpp"
#include "src/trace/trace_io.hpp"
#include "src/workloads/random_workload.hpp"

using namespace harl;

namespace {

/// A demo trace with three distinct workload phases across the file.
std::vector<trace::TraceRecord> demo_trace() {
  std::vector<trace::TraceRecord> records;
  auto append_phase = [&records](Bytes base, Bytes extent, Bytes request,
                                 IoOp op) {
    for (Bytes off = 0; off + request <= extent; off += request) {
      trace::TraceRecord r;
      r.op = op;
      r.offset = base + off;
      r.size = request;
      r.rank = static_cast<std::uint32_t>((off / request) % 8);
      records.push_back(r);
    }
  };
  append_phase(0, 128 * MiB, 128 * KiB, IoOp::kWrite);          // metadata-ish
  append_phase(128 * MiB, 1 * GiB, 1 * MiB, IoOp::kWrite);      // bulk dump
  append_phase(1 * GiB + 128 * MiB, 512 * MiB, 256 * KiB, IoOp::kRead);
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<trace::TraceRecord> records;
  if (argc > 1) {
    std::cout << "Loading trace from " << argv[1] << "\n";
    records = trace::load_trace(argv[1]);
  } else {
    std::cout << "No trace given; using a generated three-phase demo trace.\n"
              << "(usage: trace_analysis [trace-file] [rst-output])\n";
    records = demo_trace();
  }

  // --- workload characterization -------------------------------------
  const auto stats = trace::characterize(records);
  std::cout << "\n--- workload ---\n" << trace::describe(stats) << "\n";
  const auto phases = trace::io_phases(records);
  std::cout << "I/O phases (temporal order): " << phases.size() << "\n";

  // --- calibrated model + analysis -----------------------------------
  pfs::ClusterConfig cluster;  // paper-shaped 6 HDD + 2 SSD hybrid PFS
  const core::CostParams params = harness::calibrate(cluster);
  std::cout << "\n--- calibrated model ---\n"
            << "HServer: alpha [" << params.hserver_read.startup_min * 1e6
            << ", " << params.hserver_read.startup_max * 1e6
            << "] us, effective rate "
            << harness::cell(1.0 / params.hserver_read.per_byte / (1024 * 1024), 1)
            << " MB/s\n"
            << "SServer: alpha [" << params.sserver_read.startup_min * 1e6
            << ", " << params.sserver_read.startup_max * 1e6
            << "] us, effective rate "
            << harness::cell(1.0 / params.sserver_read.per_byte / (1024 * 1024), 1)
            << " MB/s\n";

  const core::Plan plan = core::analyze(records, params);
  std::cout << "\n--- region plan (threshold "
            << plan.threshold_used * 100.0 << "%, " << plan.tuning_rounds
            << " tuning rounds) ---\n";
  harness::Table table({"region", "offset", "end", "avg request", "requests",
                        "H stripe", "S stripe", "model cost (s)"});
  for (std::size_t i = 0; i < plan.regions.size(); ++i) {
    const auto& r = plan.regions[i];
    table.add_row({
        std::to_string(i),
        format_size(r.offset),
        format_size(r.end),
        format_size(static_cast<Bytes>(r.avg_request)),
        std::to_string(r.request_count),
        format_size(r.stripes[0]),
        format_size(r.stripes[1]),
        harness::cell(r.model_cost, 4),
    });
  }
  table.print(std::cout);
  std::cout << "RST rows after merging equal neighbours: " << plan.rst.size()
            << "\n";

  if (argc > 2) {
    std::ofstream os(argv[2]);
    plan.rst.save(os);
    std::cout << "RST written to " << argv[2] << "\n";
  }
  return 0;
}
