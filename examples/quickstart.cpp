// Quickstart: the whole HARL pipeline in one page.
//
//   1. Build a simulated hybrid PFS (6 HDD servers + 2 SSD servers).
//   2. Run an IOR-like workload once on the default fixed-64K layout with
//      the trace collector attached (Tracing Phase).
//   3. Calibrate the cost model and run the Analysis Phase: region division
//      (Algorithm 1) + stripe-size determination (Algorithm 2) -> RST.
//   4. Re-run the workload on the optimized region-level layout and compare
//      throughput (Placing Phase).
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "src/harness/experiment.hpp"
#include "src/harness/table.hpp"

using namespace harl;

int main() {
  // --- the workload: 16 processes, 512 KiB requests over a shared file ---
  workloads::IorConfig ior;
  ior.processes = 16;
  ior.request_size = 512 * KiB;
  ior.file_size = 4 * GiB;
  ior.requests_per_process = 64;

  // --- the cluster: paper-shaped hybrid PFS (defaults: 6 HDD + 2 SSD) ---
  harness::ExperimentOptions options;

  harness::Experiment experiment(options);
  const auto bundle = harness::ior_bundle(ior);

  std::cout << "Running IOR (write pass + read pass) under three layouts...\n";
  const auto results = experiment.run_all(
      bundle, {
                  harness::LayoutScheme::fixed(64 * KiB),  // OrangeFS default
                  harness::LayoutScheme::fixed(256 * KiB),
                  harness::LayoutScheme::harl(),           // trace + analyze
              });

  harness::Table table({"layout", "read MB/s", "write MB/s", "detail"});
  for (const auto& r : results) {
    table.add_row({r.label,
                   harness::cell(r.read.throughput() / (1024.0 * 1024.0), 1),
                   harness::cell(r.write.throughput() / (1024.0 * 1024.0), 1),
                   r.layout_description});
  }
  table.print(std::cout);

  for (const auto& r : results) {
    if (r.label != "HARL" || !r.plan) continue;
    std::cout << "\nHARL's Analysis Phase decided:\n";
    for (const auto& region : r.plan->regions) {
      std::cout << "  region [" << format_size(region.offset) << ", "
                << format_size(region.end) << "): HServer stripe "
                << format_size(region.stripes[0]) << ", SServer stripe "
                << format_size(region.stripes[1]) << " (avg request "
                << format_size(static_cast<Bytes>(region.avg_request))
                << ", " << region.request_count << " requests)\n";
    }
    std::cout << "Region stripe table entries after merging: "
              << r.plan->rst.size() << "\n";
  }
  return 0;
}
