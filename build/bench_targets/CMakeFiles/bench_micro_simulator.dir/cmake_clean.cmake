file(REMOVE_RECURSE
  "../bench/bench_micro_simulator"
  "../bench/bench_micro_simulator.pdb"
  "CMakeFiles/bench_micro_simulator.dir/bench_micro_simulator.cpp.o"
  "CMakeFiles/bench_micro_simulator.dir/bench_micro_simulator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
