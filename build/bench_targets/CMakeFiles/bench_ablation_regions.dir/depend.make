# Empty dependencies file for bench_ablation_regions.
# This may be replaced when dependencies are built.
