file(REMOVE_RECURSE
  "../bench/bench_ablation_regions"
  "../bench/bench_ablation_regions.pdb"
  "CMakeFiles/bench_ablation_regions.dir/bench_ablation_regions.cpp.o"
  "CMakeFiles/bench_ablation_regions.dir/bench_ablation_regions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
