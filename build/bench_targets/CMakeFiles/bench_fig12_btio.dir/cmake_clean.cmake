file(REMOVE_RECURSE
  "../bench/bench_fig12_btio"
  "../bench/bench_fig12_btio.pdb"
  "CMakeFiles/bench_fig12_btio.dir/bench_fig12_btio.cpp.o"
  "CMakeFiles/bench_fig12_btio.dir/bench_fig12_btio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_btio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
