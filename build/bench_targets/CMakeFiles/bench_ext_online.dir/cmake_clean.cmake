file(REMOVE_RECURSE
  "../bench/bench_ext_online"
  "../bench/bench_ext_online.pdb"
  "CMakeFiles/bench_ext_online.dir/bench_ext_online.cpp.o"
  "CMakeFiles/bench_ext_online.dir/bench_ext_online.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
