# Empty dependencies file for bench_ext_online.
# This may be replaced when dependencies are built.
