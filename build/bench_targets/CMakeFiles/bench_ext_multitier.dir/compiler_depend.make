# Empty compiler generated dependencies file for bench_ext_multitier.
# This may be replaced when dependencies are built.
