file(REMOVE_RECURSE
  "../bench/bench_ext_multitier"
  "../bench/bench_ext_multitier.pdb"
  "CMakeFiles/bench_ext_multitier.dir/bench_ext_multitier.cpp.o"
  "CMakeFiles/bench_ext_multitier.dir/bench_ext_multitier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multitier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
