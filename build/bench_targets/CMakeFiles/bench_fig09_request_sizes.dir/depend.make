# Empty dependencies file for bench_fig09_request_sizes.
# This may be replaced when dependencies are built.
