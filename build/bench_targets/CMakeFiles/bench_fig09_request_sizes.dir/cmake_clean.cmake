file(REMOVE_RECURSE
  "../bench/bench_fig09_request_sizes"
  "../bench/bench_fig09_request_sizes.pdb"
  "CMakeFiles/bench_fig09_request_sizes.dir/bench_fig09_request_sizes.cpp.o"
  "CMakeFiles/bench_fig09_request_sizes.dir/bench_fig09_request_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_request_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
