file(REMOVE_RECURSE
  "../bench/bench_micro_region_division"
  "../bench/bench_micro_region_division.pdb"
  "CMakeFiles/bench_micro_region_division.dir/bench_micro_region_division.cpp.o"
  "CMakeFiles/bench_micro_region_division.dir/bench_micro_region_division.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_region_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
