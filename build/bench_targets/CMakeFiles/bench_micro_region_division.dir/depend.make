# Empty dependencies file for bench_micro_region_division.
# This may be replaced when dependencies are built.
