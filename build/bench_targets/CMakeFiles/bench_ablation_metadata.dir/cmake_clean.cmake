file(REMOVE_RECURSE
  "../bench/bench_ablation_metadata"
  "../bench/bench_ablation_metadata.pdb"
  "CMakeFiles/bench_ablation_metadata.dir/bench_ablation_metadata.cpp.o"
  "CMakeFiles/bench_ablation_metadata.dir/bench_ablation_metadata.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
