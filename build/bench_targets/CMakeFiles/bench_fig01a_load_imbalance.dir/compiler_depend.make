# Empty compiler generated dependencies file for bench_fig01a_load_imbalance.
# This may be replaced when dependencies are built.
