file(REMOVE_RECURSE
  "../bench/bench_fig01a_load_imbalance"
  "../bench/bench_fig01a_load_imbalance.pdb"
  "CMakeFiles/bench_fig01a_load_imbalance.dir/bench_fig01a_load_imbalance.cpp.o"
  "CMakeFiles/bench_fig01a_load_imbalance.dir/bench_fig01a_load_imbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01a_load_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
