# Empty dependencies file for bench_fig01b_stripe_sensitivity.
# This may be replaced when dependencies are built.
