file(REMOVE_RECURSE
  "../bench/bench_fig01b_stripe_sensitivity"
  "../bench/bench_fig01b_stripe_sensitivity.pdb"
  "CMakeFiles/bench_fig01b_stripe_sensitivity.dir/bench_fig01b_stripe_sensitivity.cpp.o"
  "CMakeFiles/bench_fig01b_stripe_sensitivity.dir/bench_fig01b_stripe_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01b_stripe_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
