# Empty dependencies file for bench_ablation_division.
# This may be replaced when dependencies are built.
