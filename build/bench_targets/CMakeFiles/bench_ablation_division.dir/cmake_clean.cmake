file(REMOVE_RECURSE
  "../bench/bench_ablation_division"
  "../bench/bench_ablation_division.pdb"
  "CMakeFiles/bench_ablation_division.dir/bench_ablation_division.cpp.o"
  "CMakeFiles/bench_ablation_division.dir/bench_ablation_division.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
