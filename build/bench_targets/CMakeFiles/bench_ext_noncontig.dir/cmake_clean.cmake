file(REMOVE_RECURSE
  "../bench/bench_ext_noncontig"
  "../bench/bench_ext_noncontig.pdb"
  "CMakeFiles/bench_ext_noncontig.dir/bench_ext_noncontig.cpp.o"
  "CMakeFiles/bench_ext_noncontig.dir/bench_ext_noncontig.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_noncontig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
