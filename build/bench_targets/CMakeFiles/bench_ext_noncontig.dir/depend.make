# Empty dependencies file for bench_ext_noncontig.
# This may be replaced when dependencies are built.
