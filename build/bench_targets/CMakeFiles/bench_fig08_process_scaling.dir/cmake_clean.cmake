file(REMOVE_RECURSE
  "../bench/bench_fig08_process_scaling"
  "../bench/bench_fig08_process_scaling.pdb"
  "CMakeFiles/bench_fig08_process_scaling.dir/bench_fig08_process_scaling.cpp.o"
  "CMakeFiles/bench_fig08_process_scaling.dir/bench_fig08_process_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_process_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
