# Empty compiler generated dependencies file for bench_fig08_process_scaling.
# This may be replaced when dependencies are built.
