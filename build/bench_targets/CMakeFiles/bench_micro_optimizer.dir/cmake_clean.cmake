file(REMOVE_RECURSE
  "../bench/bench_micro_optimizer"
  "../bench/bench_micro_optimizer.pdb"
  "CMakeFiles/bench_micro_optimizer.dir/bench_micro_optimizer.cpp.o"
  "CMakeFiles/bench_micro_optimizer.dir/bench_micro_optimizer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
