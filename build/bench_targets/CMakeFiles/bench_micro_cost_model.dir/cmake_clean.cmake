file(REMOVE_RECURSE
  "../bench/bench_micro_cost_model"
  "../bench/bench_micro_cost_model.pdb"
  "CMakeFiles/bench_micro_cost_model.dir/bench_micro_cost_model.cpp.o"
  "CMakeFiles/bench_micro_cost_model.dir/bench_micro_cost_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
