file(REMOVE_RECURSE
  "../bench/bench_fig11_nonuniform"
  "../bench/bench_fig11_nonuniform.pdb"
  "CMakeFiles/bench_fig11_nonuniform.dir/bench_fig11_nonuniform.cpp.o"
  "CMakeFiles/bench_fig11_nonuniform.dir/bench_fig11_nonuniform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_nonuniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
