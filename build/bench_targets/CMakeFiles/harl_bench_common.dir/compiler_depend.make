# Empty compiler generated dependencies file for harl_bench_common.
# This may be replaced when dependencies are built.
