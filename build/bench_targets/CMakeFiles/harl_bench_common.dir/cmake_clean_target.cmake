file(REMOVE_RECURSE
  "libharl_bench_common.a"
)
