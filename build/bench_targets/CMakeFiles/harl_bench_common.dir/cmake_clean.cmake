file(REMOVE_RECURSE
  "CMakeFiles/harl_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/harl_bench_common.dir/bench_common.cpp.o.d"
  "libharl_bench_common.a"
  "libharl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
