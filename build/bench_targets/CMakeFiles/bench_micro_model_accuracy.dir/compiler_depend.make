# Empty compiler generated dependencies file for bench_micro_model_accuracy.
# This may be replaced when dependencies are built.
