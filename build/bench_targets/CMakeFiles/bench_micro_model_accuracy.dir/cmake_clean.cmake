file(REMOVE_RECURSE
  "../bench/bench_micro_model_accuracy"
  "../bench/bench_micro_model_accuracy.pdb"
  "CMakeFiles/bench_micro_model_accuracy.dir/bench_micro_model_accuracy.cpp.o"
  "CMakeFiles/bench_micro_model_accuracy.dir/bench_micro_model_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
