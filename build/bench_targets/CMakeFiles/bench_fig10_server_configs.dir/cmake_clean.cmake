file(REMOVE_RECURSE
  "../bench/bench_fig10_server_configs"
  "../bench/bench_fig10_server_configs.pdb"
  "CMakeFiles/bench_fig10_server_configs.dir/bench_fig10_server_configs.cpp.o"
  "CMakeFiles/bench_fig10_server_configs.dir/bench_fig10_server_configs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_server_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
