# Empty dependencies file for bench_fig10_server_configs.
# This may be replaced when dependencies are built.
