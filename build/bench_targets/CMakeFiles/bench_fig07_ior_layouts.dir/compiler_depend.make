# Empty compiler generated dependencies file for bench_fig07_ior_layouts.
# This may be replaced when dependencies are built.
