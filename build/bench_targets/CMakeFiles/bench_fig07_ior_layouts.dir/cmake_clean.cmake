file(REMOVE_RECURSE
  "../bench/bench_fig07_ior_layouts"
  "../bench/bench_fig07_ior_layouts.pdb"
  "CMakeFiles/bench_fig07_ior_layouts.dir/bench_fig07_ior_layouts.cpp.o"
  "CMakeFiles/bench_fig07_ior_layouts.dir/bench_fig07_ior_layouts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_ior_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
