# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/divider_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/rst_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/planner_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/middleware_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/multitier_test[1]_include.cmake")
include("/root/repo/build/tests/online_advisor_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/carl_test[1]_include.cmake")
include("/root/repo/build/tests/closed_form_test[1]_include.cmake")
