file(REMOVE_RECURSE
  "CMakeFiles/multitier_test.dir/multitier_test.cpp.o"
  "CMakeFiles/multitier_test.dir/multitier_test.cpp.o.d"
  "multitier_test"
  "multitier_test.pdb"
  "multitier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
