# Empty dependencies file for multitier_test.
# This may be replaced when dependencies are built.
