file(REMOVE_RECURSE
  "CMakeFiles/layout_test.dir/layout_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout_test.cpp.o.d"
  "layout_test"
  "layout_test.pdb"
  "layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
