# Empty dependencies file for middleware_test.
# This may be replaced when dependencies are built.
