file(REMOVE_RECURSE
  "CMakeFiles/middleware_test.dir/middleware_test.cpp.o"
  "CMakeFiles/middleware_test.dir/middleware_test.cpp.o.d"
  "middleware_test"
  "middleware_test.pdb"
  "middleware_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
