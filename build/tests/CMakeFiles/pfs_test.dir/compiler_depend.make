# Empty compiler generated dependencies file for pfs_test.
# This may be replaced when dependencies are built.
