file(REMOVE_RECURSE
  "CMakeFiles/pfs_test.dir/pfs_test.cpp.o"
  "CMakeFiles/pfs_test.dir/pfs_test.cpp.o.d"
  "pfs_test"
  "pfs_test.pdb"
  "pfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
