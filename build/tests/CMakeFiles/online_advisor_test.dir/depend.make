# Empty dependencies file for online_advisor_test.
# This may be replaced when dependencies are built.
