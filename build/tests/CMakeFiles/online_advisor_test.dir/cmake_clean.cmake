file(REMOVE_RECURSE
  "CMakeFiles/online_advisor_test.dir/online_advisor_test.cpp.o"
  "CMakeFiles/online_advisor_test.dir/online_advisor_test.cpp.o.d"
  "online_advisor_test"
  "online_advisor_test.pdb"
  "online_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
