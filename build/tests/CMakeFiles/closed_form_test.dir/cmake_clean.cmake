file(REMOVE_RECURSE
  "CMakeFiles/closed_form_test.dir/closed_form_test.cpp.o"
  "CMakeFiles/closed_form_test.dir/closed_form_test.cpp.o.d"
  "closed_form_test"
  "closed_form_test.pdb"
  "closed_form_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
