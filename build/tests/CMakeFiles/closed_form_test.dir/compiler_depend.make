# Empty compiler generated dependencies file for closed_form_test.
# This may be replaced when dependencies are built.
