file(REMOVE_RECURSE
  "CMakeFiles/carl_test.dir/carl_test.cpp.o"
  "CMakeFiles/carl_test.dir/carl_test.cpp.o.d"
  "carl_test"
  "carl_test.pdb"
  "carl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
