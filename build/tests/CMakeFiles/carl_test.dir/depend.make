# Empty dependencies file for carl_test.
# This may be replaced when dependencies are built.
