# Empty dependencies file for divider_test.
# This may be replaced when dependencies are built.
