file(REMOVE_RECURSE
  "CMakeFiles/divider_test.dir/divider_test.cpp.o"
  "CMakeFiles/divider_test.dir/divider_test.cpp.o.d"
  "divider_test"
  "divider_test.pdb"
  "divider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
