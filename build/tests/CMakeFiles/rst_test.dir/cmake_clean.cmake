file(REMOVE_RECURSE
  "CMakeFiles/rst_test.dir/rst_test.cpp.o"
  "CMakeFiles/rst_test.dir/rst_test.cpp.o.d"
  "rst_test"
  "rst_test.pdb"
  "rst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
