# Empty dependencies file for rst_test.
# This may be replaced when dependencies are built.
