# Empty compiler generated dependencies file for harl_trace_tool.
# This may be replaced when dependencies are built.
