file(REMOVE_RECURSE
  "CMakeFiles/harl_trace_tool.dir/harl_trace.cpp.o"
  "CMakeFiles/harl_trace_tool.dir/harl_trace.cpp.o.d"
  "harl_trace"
  "harl_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
