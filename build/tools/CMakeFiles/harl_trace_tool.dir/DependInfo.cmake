
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/harl_trace.cpp" "tools/CMakeFiles/harl_trace_tool.dir/harl_trace.cpp.o" "gcc" "tools/CMakeFiles/harl_trace_tool.dir/harl_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/harl_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/harl_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/harl_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/harl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/harl_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/harl_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/harl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/harl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/harl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
