# Empty compiler generated dependencies file for harl_sim_tool.
# This may be replaced when dependencies are built.
