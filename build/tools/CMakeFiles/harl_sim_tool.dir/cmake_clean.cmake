file(REMOVE_RECURSE
  "CMakeFiles/harl_sim_tool.dir/harl_sim.cpp.o"
  "CMakeFiles/harl_sim_tool.dir/harl_sim.cpp.o.d"
  "harl_sim"
  "harl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
