file(REMOVE_RECURSE
  "CMakeFiles/harl_storage.dir/faulty.cpp.o"
  "CMakeFiles/harl_storage.dir/faulty.cpp.o.d"
  "CMakeFiles/harl_storage.dir/hdd.cpp.o"
  "CMakeFiles/harl_storage.dir/hdd.cpp.o.d"
  "CMakeFiles/harl_storage.dir/profiler.cpp.o"
  "CMakeFiles/harl_storage.dir/profiler.cpp.o.d"
  "CMakeFiles/harl_storage.dir/profiles.cpp.o"
  "CMakeFiles/harl_storage.dir/profiles.cpp.o.d"
  "CMakeFiles/harl_storage.dir/ssd.cpp.o"
  "CMakeFiles/harl_storage.dir/ssd.cpp.o.d"
  "libharl_storage.a"
  "libharl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
