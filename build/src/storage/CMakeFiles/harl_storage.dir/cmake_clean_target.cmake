file(REMOVE_RECURSE
  "libharl_storage.a"
)
