
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/faulty.cpp" "src/storage/CMakeFiles/harl_storage.dir/faulty.cpp.o" "gcc" "src/storage/CMakeFiles/harl_storage.dir/faulty.cpp.o.d"
  "/root/repo/src/storage/hdd.cpp" "src/storage/CMakeFiles/harl_storage.dir/hdd.cpp.o" "gcc" "src/storage/CMakeFiles/harl_storage.dir/hdd.cpp.o.d"
  "/root/repo/src/storage/profiler.cpp" "src/storage/CMakeFiles/harl_storage.dir/profiler.cpp.o" "gcc" "src/storage/CMakeFiles/harl_storage.dir/profiler.cpp.o.d"
  "/root/repo/src/storage/profiles.cpp" "src/storage/CMakeFiles/harl_storage.dir/profiles.cpp.o" "gcc" "src/storage/CMakeFiles/harl_storage.dir/profiles.cpp.o.d"
  "/root/repo/src/storage/ssd.cpp" "src/storage/CMakeFiles/harl_storage.dir/ssd.cpp.o" "gcc" "src/storage/CMakeFiles/harl_storage.dir/ssd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
