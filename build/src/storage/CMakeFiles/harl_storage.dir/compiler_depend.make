# Empty compiler generated dependencies file for harl_storage.
# This may be replaced when dependencies are built.
