file(REMOVE_RECURSE
  "CMakeFiles/harl_net.dir/network.cpp.o"
  "CMakeFiles/harl_net.dir/network.cpp.o.d"
  "libharl_net.a"
  "libharl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
