# Empty dependencies file for harl_net.
# This may be replaced when dependencies are built.
