file(REMOVE_RECURSE
  "libharl_net.a"
)
