file(REMOVE_RECURSE
  "libharl_core.a"
)
