file(REMOVE_RECURSE
  "CMakeFiles/harl_core.dir/closed_form.cpp.o"
  "CMakeFiles/harl_core.dir/closed_form.cpp.o.d"
  "CMakeFiles/harl_core.dir/cost_model.cpp.o"
  "CMakeFiles/harl_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/harl_core.dir/online_advisor.cpp.o"
  "CMakeFiles/harl_core.dir/online_advisor.cpp.o.d"
  "CMakeFiles/harl_core.dir/planner.cpp.o"
  "CMakeFiles/harl_core.dir/planner.cpp.o.d"
  "CMakeFiles/harl_core.dir/region_divider.cpp.o"
  "CMakeFiles/harl_core.dir/region_divider.cpp.o.d"
  "CMakeFiles/harl_core.dir/rst.cpp.o"
  "CMakeFiles/harl_core.dir/rst.cpp.o.d"
  "CMakeFiles/harl_core.dir/stripe_optimizer.cpp.o"
  "CMakeFiles/harl_core.dir/stripe_optimizer.cpp.o.d"
  "CMakeFiles/harl_core.dir/tiered_cost_model.cpp.o"
  "CMakeFiles/harl_core.dir/tiered_cost_model.cpp.o.d"
  "CMakeFiles/harl_core.dir/tiered_optimizer.cpp.o"
  "CMakeFiles/harl_core.dir/tiered_optimizer.cpp.o.d"
  "libharl_core.a"
  "libharl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
