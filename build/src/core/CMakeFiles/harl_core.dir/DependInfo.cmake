
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/closed_form.cpp" "src/core/CMakeFiles/harl_core.dir/closed_form.cpp.o" "gcc" "src/core/CMakeFiles/harl_core.dir/closed_form.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/harl_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/harl_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/online_advisor.cpp" "src/core/CMakeFiles/harl_core.dir/online_advisor.cpp.o" "gcc" "src/core/CMakeFiles/harl_core.dir/online_advisor.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/harl_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/harl_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/region_divider.cpp" "src/core/CMakeFiles/harl_core.dir/region_divider.cpp.o" "gcc" "src/core/CMakeFiles/harl_core.dir/region_divider.cpp.o.d"
  "/root/repo/src/core/rst.cpp" "src/core/CMakeFiles/harl_core.dir/rst.cpp.o" "gcc" "src/core/CMakeFiles/harl_core.dir/rst.cpp.o.d"
  "/root/repo/src/core/stripe_optimizer.cpp" "src/core/CMakeFiles/harl_core.dir/stripe_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/harl_core.dir/stripe_optimizer.cpp.o.d"
  "/root/repo/src/core/tiered_cost_model.cpp" "src/core/CMakeFiles/harl_core.dir/tiered_cost_model.cpp.o" "gcc" "src/core/CMakeFiles/harl_core.dir/tiered_cost_model.cpp.o.d"
  "/root/repo/src/core/tiered_optimizer.cpp" "src/core/CMakeFiles/harl_core.dir/tiered_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/harl_core.dir/tiered_optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/harl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/harl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/harl_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/harl_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
