# Empty dependencies file for harl_core.
# This may be replaced when dependencies are built.
