file(REMOVE_RECURSE
  "libharl_middleware.a"
)
