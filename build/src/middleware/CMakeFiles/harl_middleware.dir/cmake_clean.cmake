file(REMOVE_RECURSE
  "CMakeFiles/harl_middleware.dir/harl_driver.cpp.o"
  "CMakeFiles/harl_middleware.dir/harl_driver.cpp.o.d"
  "CMakeFiles/harl_middleware.dir/mpi_world.cpp.o"
  "CMakeFiles/harl_middleware.dir/mpi_world.cpp.o.d"
  "CMakeFiles/harl_middleware.dir/r2f.cpp.o"
  "CMakeFiles/harl_middleware.dir/r2f.cpp.o.d"
  "CMakeFiles/harl_middleware.dir/runner.cpp.o"
  "CMakeFiles/harl_middleware.dir/runner.cpp.o.d"
  "libharl_middleware.a"
  "libharl_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
