# Empty compiler generated dependencies file for harl_middleware.
# This may be replaced when dependencies are built.
