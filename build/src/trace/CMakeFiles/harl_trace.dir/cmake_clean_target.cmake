file(REMOVE_RECURSE
  "libharl_trace.a"
)
