# Empty compiler generated dependencies file for harl_trace.
# This may be replaced when dependencies are built.
