file(REMOVE_RECURSE
  "CMakeFiles/harl_trace.dir/analysis.cpp.o"
  "CMakeFiles/harl_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/harl_trace.dir/collector.cpp.o"
  "CMakeFiles/harl_trace.dir/collector.cpp.o.d"
  "CMakeFiles/harl_trace.dir/trace_io.cpp.o"
  "CMakeFiles/harl_trace.dir/trace_io.cpp.o.d"
  "libharl_trace.a"
  "libharl_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
