# Empty compiler generated dependencies file for harl_sim.
# This may be replaced when dependencies are built.
