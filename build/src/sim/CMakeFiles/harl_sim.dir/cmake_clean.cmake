file(REMOVE_RECURSE
  "CMakeFiles/harl_sim.dir/resource.cpp.o"
  "CMakeFiles/harl_sim.dir/resource.cpp.o.d"
  "CMakeFiles/harl_sim.dir/simulator.cpp.o"
  "CMakeFiles/harl_sim.dir/simulator.cpp.o.d"
  "libharl_sim.a"
  "libharl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
