file(REMOVE_RECURSE
  "libharl_sim.a"
)
