file(REMOVE_RECURSE
  "CMakeFiles/harl_pfs.dir/client.cpp.o"
  "CMakeFiles/harl_pfs.dir/client.cpp.o.d"
  "CMakeFiles/harl_pfs.dir/cluster.cpp.o"
  "CMakeFiles/harl_pfs.dir/cluster.cpp.o.d"
  "CMakeFiles/harl_pfs.dir/data_server.cpp.o"
  "CMakeFiles/harl_pfs.dir/data_server.cpp.o.d"
  "CMakeFiles/harl_pfs.dir/layout.cpp.o"
  "CMakeFiles/harl_pfs.dir/layout.cpp.o.d"
  "CMakeFiles/harl_pfs.dir/mds.cpp.o"
  "CMakeFiles/harl_pfs.dir/mds.cpp.o.d"
  "CMakeFiles/harl_pfs.dir/region_layout.cpp.o"
  "CMakeFiles/harl_pfs.dir/region_layout.cpp.o.d"
  "CMakeFiles/harl_pfs.dir/space.cpp.o"
  "CMakeFiles/harl_pfs.dir/space.cpp.o.d"
  "libharl_pfs.a"
  "libharl_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
