
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/client.cpp" "src/pfs/CMakeFiles/harl_pfs.dir/client.cpp.o" "gcc" "src/pfs/CMakeFiles/harl_pfs.dir/client.cpp.o.d"
  "/root/repo/src/pfs/cluster.cpp" "src/pfs/CMakeFiles/harl_pfs.dir/cluster.cpp.o" "gcc" "src/pfs/CMakeFiles/harl_pfs.dir/cluster.cpp.o.d"
  "/root/repo/src/pfs/data_server.cpp" "src/pfs/CMakeFiles/harl_pfs.dir/data_server.cpp.o" "gcc" "src/pfs/CMakeFiles/harl_pfs.dir/data_server.cpp.o.d"
  "/root/repo/src/pfs/layout.cpp" "src/pfs/CMakeFiles/harl_pfs.dir/layout.cpp.o" "gcc" "src/pfs/CMakeFiles/harl_pfs.dir/layout.cpp.o.d"
  "/root/repo/src/pfs/mds.cpp" "src/pfs/CMakeFiles/harl_pfs.dir/mds.cpp.o" "gcc" "src/pfs/CMakeFiles/harl_pfs.dir/mds.cpp.o.d"
  "/root/repo/src/pfs/region_layout.cpp" "src/pfs/CMakeFiles/harl_pfs.dir/region_layout.cpp.o" "gcc" "src/pfs/CMakeFiles/harl_pfs.dir/region_layout.cpp.o.d"
  "/root/repo/src/pfs/space.cpp" "src/pfs/CMakeFiles/harl_pfs.dir/space.cpp.o" "gcc" "src/pfs/CMakeFiles/harl_pfs.dir/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/harl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/harl_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
