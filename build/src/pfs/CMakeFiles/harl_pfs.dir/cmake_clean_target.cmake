file(REMOVE_RECURSE
  "libharl_pfs.a"
)
