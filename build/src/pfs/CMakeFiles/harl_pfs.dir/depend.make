# Empty dependencies file for harl_pfs.
# This may be replaced when dependencies are built.
