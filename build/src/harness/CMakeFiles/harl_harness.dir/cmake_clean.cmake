file(REMOVE_RECURSE
  "CMakeFiles/harl_harness.dir/calibration.cpp.o"
  "CMakeFiles/harl_harness.dir/calibration.cpp.o.d"
  "CMakeFiles/harl_harness.dir/experiment.cpp.o"
  "CMakeFiles/harl_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/harl_harness.dir/scheme.cpp.o"
  "CMakeFiles/harl_harness.dir/scheme.cpp.o.d"
  "CMakeFiles/harl_harness.dir/table.cpp.o"
  "CMakeFiles/harl_harness.dir/table.cpp.o.d"
  "libharl_harness.a"
  "libharl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
