# Empty compiler generated dependencies file for harl_harness.
# This may be replaced when dependencies are built.
