file(REMOVE_RECURSE
  "libharl_harness.a"
)
