file(REMOVE_RECURSE
  "CMakeFiles/harl_common.dir/config.cpp.o"
  "CMakeFiles/harl_common.dir/config.cpp.o.d"
  "CMakeFiles/harl_common.dir/log.cpp.o"
  "CMakeFiles/harl_common.dir/log.cpp.o.d"
  "CMakeFiles/harl_common.dir/rng.cpp.o"
  "CMakeFiles/harl_common.dir/rng.cpp.o.d"
  "CMakeFiles/harl_common.dir/stats.cpp.o"
  "CMakeFiles/harl_common.dir/stats.cpp.o.d"
  "CMakeFiles/harl_common.dir/thread_pool.cpp.o"
  "CMakeFiles/harl_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/harl_common.dir/units.cpp.o"
  "CMakeFiles/harl_common.dir/units.cpp.o.d"
  "libharl_common.a"
  "libharl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
