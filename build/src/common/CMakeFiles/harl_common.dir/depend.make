# Empty dependencies file for harl_common.
# This may be replaced when dependencies are built.
