file(REMOVE_RECURSE
  "libharl_common.a"
)
