file(REMOVE_RECURSE
  "CMakeFiles/harl_workloads.dir/btio.cpp.o"
  "CMakeFiles/harl_workloads.dir/btio.cpp.o.d"
  "CMakeFiles/harl_workloads.dir/ior.cpp.o"
  "CMakeFiles/harl_workloads.dir/ior.cpp.o.d"
  "CMakeFiles/harl_workloads.dir/multiregion.cpp.o"
  "CMakeFiles/harl_workloads.dir/multiregion.cpp.o.d"
  "CMakeFiles/harl_workloads.dir/random_workload.cpp.o"
  "CMakeFiles/harl_workloads.dir/random_workload.cpp.o.d"
  "CMakeFiles/harl_workloads.dir/replay.cpp.o"
  "CMakeFiles/harl_workloads.dir/replay.cpp.o.d"
  "libharl_workloads.a"
  "libharl_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harl_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
