file(REMOVE_RECURSE
  "libharl_workloads.a"
)
