# Empty compiler generated dependencies file for harl_workloads.
# This may be replaced when dependencies are built.
