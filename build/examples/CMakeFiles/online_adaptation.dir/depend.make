# Empty dependencies file for online_adaptation.
# This may be replaced when dependencies are built.
