file(REMOVE_RECURSE
  "CMakeFiles/online_adaptation.dir/online_adaptation.cpp.o"
  "CMakeFiles/online_adaptation.dir/online_adaptation.cpp.o.d"
  "online_adaptation"
  "online_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
