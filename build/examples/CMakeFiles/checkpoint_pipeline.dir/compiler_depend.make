# Empty compiler generated dependencies file for checkpoint_pipeline.
# This may be replaced when dependencies are built.
