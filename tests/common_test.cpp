// Unit tests for src/common: units, RNG, statistics, intervals, config,
// thread pool.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

#include "src/common/config.hpp"
#include "src/common/interval.hpp"
#include "src/common/log.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/units.hpp"
#include "src/obs/sketch.hpp"

namespace harl {
namespace {

using namespace harl::literals;

// ---------------------------------------------------------------- units ----

TEST(Units, ParsesPlainBytes) {
  EXPECT_EQ(parse_size("0"), 0u);
  EXPECT_EQ(parse_size("512"), 512u);
}

TEST(Units, ParsesBinarySuffixes) {
  EXPECT_EQ(parse_size("64K"), 64 * KiB);
  EXPECT_EQ(parse_size("2M"), 2 * MiB);
  EXPECT_EQ(parse_size("1G"), 1 * GiB);
  EXPECT_EQ(parse_size("3T"), 3 * 1024 * GiB);
}

TEST(Units, ParsesVerboseSuffixes) {
  EXPECT_EQ(parse_size("64KB"), 64 * KiB);
  EXPECT_EQ(parse_size("64KiB"), 64 * KiB);
  EXPECT_EQ(parse_size("64k"), 64 * KiB);
  EXPECT_EQ(parse_size("512B"), 512u);
}

TEST(Units, RejectsMalformedInput) {
  EXPECT_THROW(parse_size(""), std::invalid_argument);
  EXPECT_THROW(parse_size("K"), std::invalid_argument);
  EXPECT_THROW(parse_size("12Q"), std::invalid_argument);
  EXPECT_THROW(parse_size("12KXB"), std::invalid_argument);
  EXPECT_THROW(parse_size("99999999999999999999G"), std::invalid_argument);
}

TEST(Units, RejectsOverflow) {
  EXPECT_THROW(parse_size("18014398509481984G"), std::invalid_argument);
}

TEST(Units, FormatsExactMultiples) {
  EXPECT_EQ(format_size(64 * KiB), "64K");
  EXPECT_EQ(format_size(2 * MiB), "2M");
  EXPECT_EQ(format_size(3 * GiB), "3G");
  EXPECT_EQ(format_size(1000), "1000");
}

TEST(Units, FormatRoundTripsThroughParse) {
  for (Bytes v : {4_KiB, 36_KiB, 148_KiB, 1_MiB, 7_GiB, Bytes{123}}) {
    EXPECT_EQ(parse_size(format_size(v)), v);
  }
}

TEST(Units, LiteralsMatchConstants) {
  EXPECT_EQ(1_KiB, KiB);
  EXPECT_EQ(1_MiB, MiB);
  EXPECT_EQ(1_GiB, GiB);
}

TEST(Units, FormatsThroughput) {
  EXPECT_EQ(format_throughput(117.0 * 1024 * 1024), "117.0 MB/s");
  EXPECT_EQ(format_throughput(0.0), "0.0 MB/s");
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, Uniform01MeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64CoversFullRangeInclusive) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_u64(10, 13));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 13u);
}

TEST(Rng, UniformU64SingletonRange) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  Rng parent2(21);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.next(), child2.next());
  // Child differs from a fresh parent stream.
  Rng fresh(21);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += child.next() == fresh.next();
  EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------- stats ----

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
  EXPECT_EQ(rs.cv(), 0.0);
}

TEST(RunningStats, MatchesClosedFormOnKnownSample) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(rs.cv(), 0.4);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
  EXPECT_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, ConstantSampleHasZeroCv) {
  RunningStats rs;
  for (int i = 0; i < 50; ++i) rs.add(512.0);
  EXPECT_DOUBLE_EQ(rs.cv(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, ResetClearsEverything) {
  RunningStats rs;
  rs.add(1.0);
  rs.add(2.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  // min/max must not leak across a reset: an all-negative second window
  // would otherwise report the stale max from the first.
  EXPECT_EQ(rs.min(), 0.0);
  EXPECT_EQ(rs.max(), 0.0);
  rs.add(-3.0);
  EXPECT_EQ(rs.min(), -3.0);
  EXPECT_EQ(rs.max(), -3.0);
}

TEST(RunningStats, SingleSampleHasZeroCv) {
  RunningStats rs;
  rs.add(7.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.cv(), 0.0);
  EXPECT_EQ(rs.min(), 7.5);
  EXPECT_EQ(rs.max(), 7.5);
}

TEST(RunningStats, NumericallyStableOnLargeOffsets) {
  RunningStats rs;
  const double base = 1e12;
  for (double x : {base + 1, base + 2, base + 3}) rs.add(x);
  EXPECT_NEAR(rs.mean(), base + 2, 1e-3);
  EXPECT_NEAR(rs.variance(), 2.0 / 3.0, 1e-6);
}

TEST(Summarize, AgreesWithRunningStats) {
  std::vector<double> xs = {1, 5, 2, 8, 3};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.8);
  EXPECT_DOUBLE_EQ(s.sum, 19.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 8.0);
}

TEST(Percentile, HandlesEdgesAndInterpolation) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_THROW(percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101), std::invalid_argument);
}

TEST(Histogram, CountsBucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(5.0);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(2), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(1), 4.0);
}

TEST(Histogram, RejectsDegenerateRanges) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --------------------------------------------------------- log histogram ----

TEST(LogHistogram, TracksExactEnvelopeAndBucketedBody) {
  LogHistogram h;
  for (double x : {1e-6, 3e-3, 3e-3, 0.5, 12.0}) h.add(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 12.0);
  EXPECT_DOUBLE_EQ(h.sum(), 1e-6 + 3e-3 + 3e-3 + 0.5 + 12.0);
  // Percentiles interpolate inside a bucket, so they are only bucket-exact:
  // relative error bounded by 1/2^sub_bits, and always inside [min, max].
  const double p50 = h.percentile(50.0);
  EXPECT_NEAR(p50, 3e-3, 3e-3 / (1 << h.sub_bits()));
  EXPECT_GE(h.percentile(0.0), h.min());
  EXPECT_LE(h.percentile(100.0), h.max());
}

TEST(LogHistogram, CountsNonPositivesSeparately) {
  LogHistogram h;
  h.add(0.0);
  h.add(-1.5);
  h.add(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.non_positive(), 2u);
  std::uint64_t bucketed = 0;
  for (const auto& b : h.buckets()) bucketed += b.count;
  EXPECT_EQ(bucketed, 1u);
  // Non-positives sort below every bucket: the median of {-1.5, 0, 2} is 0.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(LogHistogram, SummaryRoundTripsThroughBuckets) {
  // Every sample must land in exactly one exported bucket whose [lo, hi)
  // bounds contain it, and bucket counts must sum to count().
  LogHistogram h;
  std::vector<double> xs;
  for (int i = 1; i <= 200; ++i) xs.push_back(1e-5 * i * i);
  for (double x : xs) h.add(x);
  std::uint64_t total = 0;
  for (const auto& b : h.buckets()) {
    EXPECT_LT(b.lo, b.hi);
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
  for (double x : xs) {
    bool contained = false;
    for (const auto& b : h.buckets()) {
      if (x >= b.lo && x < b.hi) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "sample " << x << " in no bucket";
  }
}

/// Exact (integer/envelope) content equality: bucket counts, totals, min and
/// max merge exactly in any order.  `sum` is excluded on purpose — summing
/// doubles is not associative, so it is only reproducible for a fixed merge
/// order (which CrossThreadMergeIsDeterministic pins).
void expect_same_distribution(const LogHistogram& a, const LogHistogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.non_positive(), b.non_positive());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
  const auto ab = a.buckets();
  const auto bb = b.buckets();
  ASSERT_EQ(ab.size(), bb.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    EXPECT_DOUBLE_EQ(ab[i].lo, bb[i].lo);
    EXPECT_EQ(ab[i].count, bb[i].count);
  }
}

TEST(LogHistogram, MergeEqualsSingleStreamInAnyOrder) {
  // The property that makes per-thread collection safe: merging shards
  // yields the same distribution as one histogram that saw every sample,
  // regardless of merge order.
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) xs.push_back(0.37 * i);
  LogHistogram whole;
  for (double x : xs) whole.add(x);

  LogHistogram a, b, c;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(xs[i]);
  }
  LogHistogram abc = a;
  abc.merge(b);
  abc.merge(c);
  LogHistogram cba = c;
  cba.merge(b);
  cba.merge(a);
  expect_same_distribution(abc, whole);
  expect_same_distribution(cba, whole);
  EXPECT_NEAR(abc.sum(), whole.sum(), 1e-9 * whole.sum());
  EXPECT_NEAR(cba.sum(), whole.sum(), 1e-9 * whole.sum());
}

TEST(LogHistogram, CrossThreadMergeIsDeterministic) {
  // Four threads fill disjoint shards concurrently; merging in index order
  // must be bit-identical (operator==, sum included) to merging the same
  // shards filled serially — thread interleaving must leave no residue.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  auto fill = [](LogHistogram& h, int t) {
    for (int i = 0; i < kPerThread; ++i) {
      h.add(1e-4 * (static_cast<double>(t) * kPerThread + i + 1));
    }
  };
  std::vector<LogHistogram> shards(kThreads);
  {
    ThreadPool pool(kThreads);
    pool.parallel_for(kThreads,
                      [&](std::size_t t) { fill(shards[t], static_cast<int>(t)); });
  }
  LogHistogram merged;
  for (const auto& s : shards) merged.merge(s);

  std::vector<LogHistogram> serial_shards(kThreads);
  for (int t = 0; t < kThreads; ++t) fill(serial_shards[t], t);
  LogHistogram serial;
  for (const auto& s : serial_shards) serial.merge(s);

  EXPECT_EQ(merged, serial);
  EXPECT_EQ(merged.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  expect_same_distribution(merged, serial);
}

TEST(LogHistogram, ResetForgetsEverything) {
  LogHistogram h;
  h.add(4.0);
  h.add(-1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.non_positive(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h, LogHistogram{});
}

// ------------------------------------------------------- quantile sketch ----

TEST(QuantileSketch, TracksExactEnvelopeAndBucketedBody) {
  obs::QuantileSketch s;
  for (double x : {1e-6, 3e-3, 3e-3, 0.5, 12.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1e-6);
  EXPECT_DOUBLE_EQ(s.max(), 12.0);
  EXPECT_DOUBLE_EQ(s.sum(), 1e-6 + 3e-3 + 3e-3 + 0.5 + 12.0);
  // Quantiles interpolate inside a log bucket: relative error bounded by
  // 1/2^sub_bits, and always inside the exact [min, max] envelope.
  EXPECT_NEAR(s.percentile(50.0), 3e-3, 3e-3 / (1 << s.sub_bits()));
  EXPECT_GE(s.quantile(0.0), s.min());
  EXPECT_LE(s.quantile(1.0), s.max());
  EXPECT_LE(s.percentile(99.0), s.percentile(99.9));
}

TEST(QuantileSketch, CountsNonPositivesSeparately) {
  obs::QuantileSketch s;
  s.add(0.0);
  s.add(-1.5);
  s.add(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.non_positive(), 2u);
  std::uint64_t bucketed = 0;
  for (const auto& b : s.buckets()) bucketed += b.count;
  EXPECT_EQ(bucketed, 1u);
  // Non-positives sort below every bucket: the median of {-1.5, 0, 2} is
  // the non-positive envelope, never a positive bucket value.
  EXPECT_LE(s.percentile(50.0), 0.0);
}

TEST(QuantileSketch, BucketsContainEverySample) {
  obs::QuantileSketch s;
  std::vector<double> xs;
  for (int i = 1; i <= 200; ++i) xs.push_back(1e-5 * i * i);
  for (double x : xs) s.add(x);
  std::uint64_t total = 0;
  for (const auto& b : s.buckets()) {
    EXPECT_LT(b.lo, b.hi);
    total += b.count;
  }
  EXPECT_EQ(total, s.count());
  for (double x : xs) {
    bool contained = false;
    for (const auto& b : s.buckets()) {
      if (x >= b.lo && x < b.hi) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "sample " << x << " in no bucket";
  }
}

TEST(QuantileSketch, StateIsAPureFunctionOfTheSampleMultiset) {
  // The property the MetricsRegistry's merge relies on: sharding a stream
  // and merging in ANY order reproduces the single-stream sketch exactly —
  // default operator==, every member.  Dyadic sample values keep the sum
  // bit-exact under reassociation, so even sum_ must match.
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) xs.push_back(0.25 * i);
  obs::QuantileSketch whole;
  for (double x : xs) whole.add(x);

  obs::QuantileSketch a, b, c;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(xs[i]);
  }
  obs::QuantileSketch abc = a;
  abc.merge(b);
  abc.merge(c);
  obs::QuantileSketch cba = c;
  cba.merge(b);
  cba.merge(a);
  EXPECT_EQ(abc, whole);
  EXPECT_EQ(cba, whole);
  // Growth must stay exact: no amortized slack may leak into the state.
  EXPECT_EQ(abc.buckets().size(), whole.buckets().size());
}

TEST(QuantileSketch, CrossThreadMergeIsDeterministic) {
  // Shards filled concurrently at several pool widths, merged in index
  // order, must be bit-identical to serially filled shards — thread
  // interleaving must leave no residue (the parallel-replica guarantee).
  constexpr int kShards = 4;
  constexpr int kPerShard = 5000;
  auto fill = [](obs::QuantileSketch& s, int t) {
    for (int i = 0; i < kPerShard; ++i) {
      s.add(1e-4 * (static_cast<double>(t) * kPerShard + i + 1));
    }
  };
  std::vector<obs::QuantileSketch> serial_shards(kShards);
  for (int t = 0; t < kShards; ++t) fill(serial_shards[t], t);
  obs::QuantileSketch serial;
  for (const auto& s : serial_shards) serial.merge(s);

  for (const std::size_t width : {1u, 2u, 4u, 7u}) {
    std::vector<obs::QuantileSketch> shards(kShards);
    {
      ThreadPool pool(width);
      pool.parallel_for(kShards, [&](std::size_t t) {
        fill(shards[t], static_cast<int>(t));
      });
    }
    obs::QuantileSketch merged;
    for (const auto& s : shards) merged.merge(s);
    EXPECT_EQ(merged, serial) << "pool width " << width;
  }
  EXPECT_EQ(serial.count(),
            static_cast<std::uint64_t>(kShards) * kPerShard);
}

TEST(QuantileSketch, ResetForgetsEverything) {
  obs::QuantileSketch s;
  s.add(4.0);
  s.add(-1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.non_positive(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s, obs::QuantileSketch{});
}

TEST(QuantileSketch, RejectsMismatchedMergeAndExcessiveResolution) {
  EXPECT_THROW(obs::QuantileSketch(13), std::invalid_argument);
  obs::QuantileSketch coarse(4), fine(8);
  coarse.add(1.0);
  fine.add(1.0);
  EXPECT_THROW(coarse.merge(fine), std::invalid_argument);
}

// ------------------------------------------------------------- interval ----

TEST(Interval, BasicPredicates) {
  const ByteInterval iv{10, 20};
  EXPECT_EQ(iv.length(), 10u);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(10));
  EXPECT_FALSE(iv.contains(20));
  EXPECT_TRUE(iv.contains(ByteInterval{12, 18}));
  EXPECT_FALSE(iv.contains(ByteInterval{12, 21}));
  EXPECT_TRUE(iv.contains(ByteInterval{5, 5}));  // empty is contained
}

TEST(Interval, OverlapAndIntersection) {
  const ByteInterval a{0, 10};
  const ByteInterval b{5, 15};
  const ByteInterval c{10, 20};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));  // half-open: touching is disjoint
  EXPECT_EQ(intersect(a, b), (ByteInterval{5, 10}));
  EXPECT_TRUE(intersect(a, c).empty());
}

TEST(Interval, IntervalOfBuildsHalfOpenRange) {
  EXPECT_EQ(interval_of(100, 50), (ByteInterval{100, 150}));
  EXPECT_TRUE(interval_of(100, 0).empty());
}

// --------------------------------------------------------------- config ----

TEST(Config, ParsesKeyValuePairs) {
  const auto cfg = Config::from_args({"a=1", "b=hello", "size=64K"});
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_or("b", ""), "hello");
  EXPECT_EQ(cfg.get_size("size", 0), 64 * KiB);
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
}

TEST(Config, LaterDuplicatesWin) {
  const auto cfg = Config::from_args({"x=1", "x=2"});
  EXPECT_EQ(cfg.get_int("x", 0), 2);
}

TEST(Config, FromStringSplitsOnWhitespaceAndCommas) {
  const auto cfg = Config::from_string("a=1, b=2\n c=3");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_int("b", 0), 2);
  EXPECT_EQ(cfg.get_int("c", 0), 3);
}

TEST(Config, BooleansAcceptCommonSpellings) {
  const auto cfg = Config::from_args({"t=yes", "f=OFF"});
  EXPECT_TRUE(cfg.get_bool("t", false));
  EXPECT_FALSE(cfg.get_bool("f", true));
  EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(Config, RejectsMalformedEntries) {
  EXPECT_THROW(Config::from_args({"novalue"}), std::invalid_argument);
  EXPECT_THROW(Config::from_args({"=x"}), std::invalid_argument);
  const auto cfg = Config::from_args({"b=maybe"});
  EXPECT_THROW(cfg.get_bool("b", false), std::invalid_argument);
}

// ------------------------------------------------------------------ log ----

TEST(Log, LevelGatesEmission) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold calls are no-ops (observable only via the level check,
  // but they must not crash or deadlock).
  log_debug("dropped ", 1);
  log_info("dropped ", 2);
  log_warn("dropped ", 3);
  set_log_level(LogLevel::kOff);
  log_error("also dropped");
  set_log_level(before);
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SubmitExceptionsSurfaceThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // parallel_for is work-helping: the caller claims iterations itself, so
  // an inner parallel_for on the same pool always makes progress even when
  // every pool thread is blocked inside the outer loop.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t outer) {
                          pool.parallel_for(4, [&](std::size_t inner) {
                            if (outer == 1 && inner == 2) {
                              throw std::runtime_error("inner boom");
                            }
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForCompletesRemainingWorkAfterThrow) {
  // One failing iteration must not strand the others: every index is still
  // visited exactly once, then the first exception is rethrown.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   hits[i]++;
                                   if (i % 17 == 0) {
                                     throw std::runtime_error("sparse boom");
                                   }
                                 }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace harl
