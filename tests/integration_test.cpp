// End-to-end integration tests: the full Tracing -> Analysis -> Placing
// pipeline against the simulated hybrid PFS, asserting the paper's headline
// *shape* results (who wins) at CI scale.
#include <gtest/gtest.h>

#include "src/harness/experiment.hpp"

namespace harl::harness {
namespace {

ExperimentOptions ci_options() {
  ExperimentOptions opts;
  opts.calibration.samples_per_size = 400;
  opts.calibration.beta_samples = 400;
  return opts;
}

workloads::IorConfig ci_ior(Bytes request_size = 512 * KiB) {
  workloads::IorConfig ior;
  ior.processes = 16;
  ior.file_size = 1 * GiB;
  ior.request_size = request_size;
  ior.requests_per_process = 24;
  return ior;
}

TEST(Integration, HarlBeatsTheDefaultLayoutOnUniformIor) {
  Experiment exp(ci_options());
  const auto bundle = ior_bundle(ci_ior());
  const auto fixed64 = exp.run(bundle, LayoutScheme::fixed(64 * KiB));
  const auto harl = exp.run(bundle, LayoutScheme::harl());
  // Paper Fig. 7: HARL improves on the 64 KiB default for both ops.
  EXPECT_GT(harl.write.throughput(), fixed64.write.throughput());
  EXPECT_GT(harl.read.throughput(), fixed64.read.throughput());
}

TEST(Integration, HarlIsCompetitiveWithEveryFixedStripe) {
  Experiment exp(ci_options());
  const auto bundle = ior_bundle(ci_ior());
  const auto harl = exp.run(bundle, LayoutScheme::harl());
  for (Bytes stripe : {16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 2 * MiB}) {
    const auto fixed = exp.run(bundle, LayoutScheme::fixed(stripe));
    // The model is an approximation of the simulator, so allow a small
    // margin; the paper's claim is that no fixed stripe beats HARL.
    EXPECT_GE(harl.total.throughput(), 0.93 * fixed.total.throughput())
        << "fixed stripe " << format_size(stripe);
  }
}

TEST(Integration, HarlBeatsRandomStripes) {
  Experiment exp(ci_options());
  const auto bundle = ior_bundle(ci_ior());
  const auto harl = exp.run(bundle, LayoutScheme::harl());
  for (std::uint64_t seed : {1, 2, 3}) {
    const auto rnd = exp.run(bundle, LayoutScheme::random_stripes(seed));
    EXPECT_GE(harl.total.throughput(), rnd.total.throughput()) << "seed " << seed;
  }
}

TEST(Integration, DefaultLayoutShowsLoadImbalance) {
  // Paper Fig. 1a: under the fixed 64 KiB layout, HServers spend several
  // times the I/O time of SServers.
  Experiment exp(ci_options());
  const auto result = exp.run(ior_bundle(ci_ior()), LayoutScheme::fixed(64 * KiB));
  ASSERT_EQ(result.server_io_time.size(), 8u);
  Seconds h_avg = 0.0;
  Seconds s_avg = 0.0;
  for (std::size_t i = 0; i < 6; ++i) h_avg += result.server_io_time[i] / 6.0;
  for (std::size_t i = 6; i < 8; ++i) s_avg += result.server_io_time[i] / 2.0;
  const double ratio = h_avg / s_avg;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 7.0);
}

TEST(Integration, HarlEvensOutServerIoTimes) {
  Experiment exp(ci_options());
  const auto bundle = ior_bundle(ci_ior());
  const auto fixed64 = exp.run(bundle, LayoutScheme::fixed(64 * KiB));
  const auto harl = exp.run(bundle, LayoutScheme::harl());
  auto imbalance = [](const SchemeResult& r) {
    Seconds h = 0.0;
    Seconds s = 0.0;
    for (std::size_t i = 0; i < 6; ++i) h += r.server_io_time[i] / 6.0;
    for (std::size_t i = 6; i < 8; ++i) s += r.server_io_time[i] / 2.0;
    return s > 0.0 ? h / s : 0.0;
  };
  // HARL shifts bytes toward SServers, closing the H/S gap.
  EXPECT_LT(imbalance(harl), imbalance(fixed64));
}

TEST(Integration, RegionLevelBeatsFileLevelOnNonUniformWorkload) {
  // Paper Section IV-B.5: when different parts of the file see
  // qualitatively different workloads (tiny requests that belong on
  // SServers only vs huge requests that want a hybrid spread), one
  // file-level stripe pair cannot fit both and region-level layout wins.
  ExperimentOptions opts = ci_options();
  Experiment exp(opts);

  workloads::MultiRegionConfig mr;
  mr.processes = 8;
  mr.regions = {
      {32 * MiB, 16 * KiB},
      {128 * MiB, 512 * KiB},
      {256 * MiB, 2 * MiB},
  };
  mr.coverage = 0.2;
  const auto bundle = multiregion_bundle(mr);

  const auto region_level = exp.run(bundle, LayoutScheme::harl());
  const auto file_level = exp.run(bundle, LayoutScheme::file_level_harl());
  EXPECT_GE(region_level.total.throughput(), file_level.total.throughput());
  EXPECT_GT(region_level.region_count, file_level.region_count);
}

TEST(Integration, HarlBeatsDefaultOnNonUniformWorkload) {
  Experiment exp(ci_options());
  workloads::MultiRegionConfig mr;
  mr.processes = 8;
  mr.regions = {
      {64 * MiB, 128 * KiB},
      {128 * MiB, 1 * MiB},
  };
  mr.coverage = 0.2;
  const auto bundle = multiregion_bundle(mr);
  const auto harl = exp.run(bundle, LayoutScheme::harl());
  const auto fixed64 = exp.run(bundle, LayoutScheme::fixed(64 * KiB));
  EXPECT_GT(harl.total.throughput(), fixed64.total.throughput());
}

TEST(Integration, BtioHarlBeatsDefault) {
  // Paper Fig. 12 at CI scale: small grid, few dumps.
  ExperimentOptions opts = ci_options();
  Experiment exp(opts);
  workloads::BtioConfig btio;
  btio.processes = 16;
  btio.grid = 32;
  btio.time_steps = 20;
  btio.write_interval = 5;
  const auto bundle = btio_bundle(btio);
  const auto harl = exp.run(bundle, LayoutScheme::harl());
  const auto fixed64 = exp.run(bundle, LayoutScheme::fixed(64 * KiB));
  EXPECT_GT(harl.total.throughput(), fixed64.total.throughput());
  EXPECT_GT(harl.total.bytes, 0u);
}

TEST(Integration, WholePipelineIsDeterministic) {
  const auto run_once = [] {
    Experiment exp(ci_options());
    workloads::IorConfig ior = ci_ior();
    ior.requests_per_process = 8;
    return exp.run(ior_bundle(ior), LayoutScheme::harl());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.total.makespan, b.total.makespan);
  EXPECT_EQ(a.layout_description, b.layout_description);
}

}  // namespace
}  // namespace harl::harness
