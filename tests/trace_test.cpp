// Tests for the trace collector, (de)serialization and workload analysis.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/trace/analysis.hpp"
#include "src/trace/collector.hpp"
#include "src/trace/trace_io.hpp"

namespace harl::trace {
namespace {

TraceRecord make_record(std::uint32_t rank, IoOp op, Bytes offset, Bytes size,
                        Seconds t0 = 0.0) {
  TraceRecord r;
  r.pid = rank;
  r.rank = rank;
  r.fd = 0;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = t0;
  r.t_end = t0 + 1e-3;
  return r;
}

TEST(Collector, RecordsInTemporalOrder) {
  TraceCollector c;
  c.record(0, 0, IoOp::kWrite, 100, 10, 0.0, 0.1);
  c.record(1, 0, IoOp::kRead, 50, 20, 0.2, 0.3);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.records()[0].offset, 100u);
  EXPECT_EQ(c.records()[1].offset, 50u);
}

TEST(Collector, SortedByOffsetAppliesPaperOrdering) {
  TraceCollector c;
  c.record(0, 0, IoOp::kWrite, 300, 10, 0.0, 0.1);
  c.record(1, 0, IoOp::kWrite, 100, 10, 0.1, 0.2);
  c.record(2, 0, IoOp::kWrite, 200, 10, 0.2, 0.3);
  const auto sorted = c.sorted_by_offset();
  EXPECT_EQ(sorted[0].offset, 100u);
  EXPECT_EQ(sorted[1].offset, 200u);
  EXPECT_EQ(sorted[2].offset, 300u);
}

TEST(Collector, EqualOffsetsTieBreakByTimeThenRank) {
  TraceCollector c;
  c.record(5, 0, IoOp::kRead, 100, 10, 2.0, 2.1);
  c.record(3, 0, IoOp::kRead, 100, 10, 1.0, 1.1);
  c.record(1, 0, IoOp::kRead, 100, 10, 1.0, 1.1);
  const auto sorted = c.sorted_by_offset();
  EXPECT_EQ(sorted[0].rank, 1u);
  EXPECT_EQ(sorted[1].rank, 3u);
  EXPECT_EQ(sorted[2].rank, 5u);
}

TEST(Collector, FilterByFileDescriptor) {
  TraceCollector c;
  c.record(TraceRecord{0, 0, 7, IoOp::kRead, 10, 1, 0, 0});
  c.record(TraceRecord{0, 0, 8, IoOp::kRead, 20, 1, 0, 0});
  c.record(TraceRecord{0, 0, 7, IoOp::kRead, 5, 1, 0, 0});
  const auto fd7 = c.sorted_by_offset(7);
  ASSERT_EQ(fd7.size(), 2u);
  EXPECT_EQ(fd7[0].offset, 5u);
  EXPECT_EQ(fd7[1].offset, 10u);
}

TEST(Collector, ClearEmptiesTheBuffer) {
  TraceCollector c;
  c.record(0, 0, IoOp::kRead, 0, 1, 0.0, 0.1);
  c.clear();
  EXPECT_TRUE(c.empty());
}

TEST(TraceIo, CsvRoundTripsExactly) {
  std::vector<TraceRecord> records = {
      make_record(0, IoOp::kWrite, 0, 512 * KiB, 0.125),
      make_record(3, IoOp::kRead, 1234567890123ULL, 7, 3.14159),
  };
  std::stringstream ss;
  write_csv(ss, records);
  const auto parsed = read_csv(ss);
  EXPECT_EQ(parsed, records);
}

TEST(TraceIo, BinaryRoundTripsExactly) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(make_record(static_cast<std::uint32_t>(i % 8),
                                  i % 3 ? IoOp::kRead : IoOp::kWrite,
                                  static_cast<Bytes>(i) * 4096, 4096,
                                  i * 0.001));
  }
  std::stringstream ss;
  write_binary(ss, records);
  const auto parsed = read_binary(ss);
  EXPECT_EQ(parsed, records);
}

TEST(TraceIo, CsvRejectsBadHeaderAndMalformedRows) {
  {
    std::stringstream ss("not,a,header\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("pid,rank,fd,op,offset,size,t_start,t_end\n1,2,3\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss(
        "pid,rank,fd,op,offset,size,t_start,t_end\n1,2,3,erase,0,1,0,0\n");
    EXPECT_THROW(read_csv(ss), std::runtime_error);
  }
}

TEST(TraceIo, BinaryRejectsBadMagicAndTruncation) {
  {
    std::stringstream ss("XXXXXXXXgarbage");
    EXPECT_THROW(read_binary(ss), std::runtime_error);
  }
  {
    std::vector<TraceRecord> records = {make_record(0, IoOp::kRead, 0, 1)};
    std::stringstream ss;
    write_binary(ss, records);
    std::string data = ss.str();
    data.resize(data.size() - 4);  // truncate
    std::stringstream cut(data);
    EXPECT_THROW(read_binary(cut), std::runtime_error);
  }
}

TEST(TraceIo, SaveLoadPicksFormatByExtension) {
  const auto dir = std::filesystem::temp_directory_path() / "harl_trace_test";
  std::filesystem::create_directories(dir);
  std::vector<TraceRecord> records = {make_record(1, IoOp::kWrite, 42, 4096)};

  const auto csv_path = (dir / "t.csv").string();
  const auto bin_path = (dir / "t.trc").string();
  save_trace(csv_path, records);
  save_trace(bin_path, records);
  EXPECT_EQ(load_trace(csv_path), records);
  EXPECT_EQ(load_trace(bin_path), records);

  // CSV file really is text.
  std::ifstream is(csv_path);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "pid,rank,fd,op,offset,size,t_start,t_end");
  std::filesystem::remove_all(dir);
}

TEST(Analysis, CharacterizeSplitsReadsAndWrites) {
  std::vector<TraceRecord> records = {
      make_record(0, IoOp::kWrite, 0, 100),
      make_record(0, IoOp::kWrite, 100, 300),
      make_record(0, IoOp::kRead, 400, 50),
  };
  const WorkloadStats stats = characterize(records);
  EXPECT_EQ(stats.total_requests, 3u);
  EXPECT_EQ(stats.write_requests, 2u);
  EXPECT_EQ(stats.read_requests, 1u);
  EXPECT_EQ(stats.write_bytes, 400u);
  EXPECT_EQ(stats.read_bytes, 50u);
  EXPECT_DOUBLE_EQ(stats.request_size.mean, 150.0);
  EXPECT_EQ(stats.min_offset, 0u);
  EXPECT_EQ(stats.max_end, 450u);
}

TEST(Analysis, CharacterizeEmptyTrace) {
  const WorkloadStats stats = characterize({});
  EXPECT_EQ(stats.total_requests, 0u);
  EXPECT_EQ(stats.max_end, 0u);
}

TEST(Analysis, IoPhasesDetectOpSwitches) {
  std::vector<TraceRecord> records = {
      make_record(0, IoOp::kWrite, 0, 10),   make_record(0, IoOp::kWrite, 10, 10),
      make_record(0, IoOp::kRead, 20, 10),   make_record(0, IoOp::kWrite, 30, 10),
      make_record(0, IoOp::kWrite, 40, 10),
  };
  const auto phases = io_phases(records);
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].op, IoOp::kWrite);
  EXPECT_EQ(phases[0].count, 2u);
  EXPECT_EQ(phases[0].bytes, 20u);
  EXPECT_EQ(phases[1].op, IoOp::kRead);
  EXPECT_EQ(phases[1].count, 1u);
  EXPECT_EQ(phases[2].count, 2u);
  EXPECT_EQ(phases[2].first, 3u);
}

TEST(Analysis, DescribeMentionsKeyNumbers) {
  std::vector<TraceRecord> records = {make_record(0, IoOp::kWrite, 0, MiB)};
  const std::string text = describe(characterize(records));
  EXPECT_NE(text.find("1 writes"), std::string::npos);
  EXPECT_NE(text.find("write 1M"), std::string::npos);
}

}  // namespace
}  // namespace harl::trace
