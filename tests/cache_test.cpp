// Tests for the heterogeneity-aware read cache tier: the CacheTier policy
// directory, the CacheManager data path over a simulated cluster, the
// cache-aware Analysis Phase (analyze_cached), and the harness-level
// guarantees — cache-budget=0 byte-identity, PDES width invariance with the
// cache enabled, and the blind-vs-aware ablation semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/planner.hpp"
#include "src/harness/experiment.hpp"
#include "src/pfs/cache_manager.hpp"
#include "src/pfs/cluster.hpp"
#include "src/sim/simulator.hpp"
#include "src/storage/cache_tier.hpp"
#include "src/storage/profiles.hpp"

namespace harl {
namespace {

using storage::CachePolicy;
using storage::CacheTier;

CacheTier::Config tier_config(std::size_t slots,
                              CachePolicy policy = CachePolicy::kLru) {
  CacheTier::Config cfg;
  cfg.capacity = static_cast<Bytes>(slots) * 64 * KiB;
  cfg.chunk = 64 * KiB;
  cfg.policy = policy;
  return cfg;
}

/// admit + fill_complete in one step (the common steady-state transition).
void admit_resident(CacheTier& tier, std::uint64_t key) {
  std::vector<std::uint64_t> evicted;
  ASSERT_TRUE(tier.admit(key, evicted));
  ASSERT_TRUE(tier.fill_complete(key));
}

TEST(CacheTier, LruEvictsColdestResident) {
  CacheTier tier(tier_config(3));
  admit_resident(tier, 0);
  admit_resident(tier, 1);
  admit_resident(tier, 2);
  // Touch 0 and 2: 1 becomes the coldest resident.
  EXPECT_EQ(tier.lookup(0), CacheTier::State::kResident);
  EXPECT_EQ(tier.lookup(2), CacheTier::State::kResident);
  std::vector<std::uint64_t> evicted;
  ASSERT_TRUE(tier.admit(3, evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_EQ(tier.state(1), CacheTier::State::kAbsent);
  EXPECT_EQ(tier.stats().evictions, 1u);
}

TEST(CacheTier, SlruHitPromotesOutOfProbation) {
  // 4 slots, 0.5 protected: entries enter probation; a probation hit
  // promotes.  Under pressure the unpromoted probation entry goes first
  // even though it is more recent than the promoted one.
  CacheTier::Config cfg = tier_config(4, CachePolicy::kSlru);
  cfg.protected_fraction = 0.5;
  CacheTier tier(cfg);
  admit_resident(tier, 10);
  EXPECT_EQ(tier.lookup(10), CacheTier::State::kResident);  // -> protected
  admit_resident(tier, 11);  // probation, newer than 10
  admit_resident(tier, 12);
  admit_resident(tier, 13);
  std::vector<std::uint64_t> evicted;
  ASSERT_TRUE(tier.admit(14, evicted));
  ASSERT_EQ(evicted.size(), 1u);
  // The probation tail (11) is the victim; the promoted 10 survives.
  EXPECT_EQ(evicted[0], 11u);
  EXPECT_EQ(tier.state(10), CacheTier::State::kResident);
}

TEST(CacheTier, InvalidatePoisonsInFlightFill) {
  CacheTier tier(tier_config(4));
  std::vector<std::uint64_t> evicted;
  ASSERT_TRUE(tier.admit(7, evicted));
  EXPECT_EQ(tier.state(7), CacheTier::State::kFilling);
  EXPECT_TRUE(tier.invalidate(7));
  // The fill lands after the write: its bytes must be discarded, and the
  // chunk must not become resident.
  EXPECT_FALSE(tier.fill_complete(7));
  EXPECT_EQ(tier.state(7), CacheTier::State::kAbsent);
  EXPECT_EQ(tier.stats().fills_discarded, 1u);
  EXPECT_EQ(tier.stats().fills_completed, 0u);
  EXPECT_EQ(tier.resident(), 0u);
}

TEST(CacheTier, PinnedFillsAreNeverVictims) {
  CacheTier tier(tier_config(2));
  std::vector<std::uint64_t> evicted;
  ASSERT_TRUE(tier.admit(0, evicted));
  ASSERT_TRUE(tier.admit(1, evicted));
  // Both slots hold in-flight fills: nothing can be evicted, so the third
  // admission must be refused rather than dropping a pinned fill.
  EXPECT_FALSE(tier.admit(2, evicted));
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(tier.filling(), 2u);
}

TEST(CacheTier, ZeroBudgetAdmitsNothing) {
  CacheTier tier(tier_config(0));
  EXPECT_EQ(tier.slots(), 0u);
  std::vector<std::uint64_t> evicted;
  EXPECT_FALSE(tier.admit(0, evicted));
  EXPECT_EQ(tier.lookup(0), CacheTier::State::kAbsent);
}

TEST(CacheTier, StatsReconcile) {
  // The invariants obs_report.py --check enforces on the exported families:
  // lookups == hits + misses, admissions == completed + discarded.
  CacheTier tier(tier_config(2));
  std::vector<std::uint64_t> evicted;
  tier.lookup(0);             // miss
  ASSERT_TRUE(tier.admit(0, evicted));
  tier.lookup(0);             // miss (still filling)
  ASSERT_TRUE(tier.fill_complete(0));
  tier.lookup(0);             // hit
  ASSERT_TRUE(tier.admit(1, evicted));
  EXPECT_TRUE(tier.invalidate(1));
  EXPECT_FALSE(tier.fill_complete(1));  // poisoned -> discarded
  const CacheTier::Stats& s = tier.stats();
  EXPECT_EQ(s.lookups, s.hits + s.misses);
  EXPECT_EQ(s.admissions, s.fills_completed + s.fills_discarded);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.admissions, 2u);
}

// ---------------------------------------------------------------------------
// CacheManager over a live simulated cluster.

pfs::ClusterConfig cache_cluster_config() {
  pfs::ClusterConfig cfg;
  cfg.num_hservers = 2;
  cfg.num_sservers = 2;
  cfg.num_clients = 2;
  return cfg;
}

pfs::CacheManager::Config manager_config(Bytes budget,
                                         std::size_t devices = 1) {
  pfs::CacheManager::Config cfg;
  cfg.budget = budget;
  cfg.chunk = 64 * KiB;
  cfg.tier = 1;
  cfg.devices = devices;
  return cfg;
}

TEST(CacheManager, SecondReadHitsTheCacheDevice) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, cache_cluster_config());
  pfs::CacheManager cache(cluster, manager_config(1 * MiB));
  ASSERT_TRUE(cache.enabled());
  cluster.client(0).set_cache(&cache);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);

  cluster.client(0).io(*layout, IoOp::kRead, 0, 128 * KiB, [] {});
  sim.run();  // miss run + background fills drain
  EXPECT_EQ(cache.tier().stats().misses, 2u);
  EXPECT_EQ(cache.tier().stats().fills_completed, 2u);

  const std::size_t cache_server = cache.cache_server(0);
  const Bytes cache_reads_before = cluster.server(cache_server).bytes_read();
  cluster.client(0).io(*layout, IoOp::kRead, 0, 128 * KiB, [] {});
  sim.run();
  EXPECT_EQ(cache.tier().stats().hits, 2u);
  EXPECT_EQ(cache.stats().hit_read_bytes, 128 * KiB);
  // The hits were served by the cache device, not the home servers.
  EXPECT_EQ(cluster.server(cache_server).bytes_read() - cache_reads_before,
            128 * KiB);
}

TEST(CacheManager, WriteInvalidateRacesTheFill) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, cache_cluster_config());
  pfs::CacheManager cache(cluster, manager_config(1 * MiB));
  cluster.client(0).set_cache(&cache);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);

  // The read admits the chunk at issue time; the write invalidates while
  // the fill is still in flight (both issued at t=0, the fill lands later).
  cluster.client(0).io(*layout, IoOp::kRead, 0, 64 * KiB, [] {});
  cluster.client(0).io(*layout, IoOp::kWrite, 0, 64 * KiB, [] {});
  sim.run();
  EXPECT_EQ(cache.tier().stats().invalidations, 1u);
  EXPECT_EQ(cache.tier().stats().fills_discarded, 1u);
  EXPECT_EQ(cache.tier().stats().fills_completed, 0u);
  EXPECT_EQ(cache.tier().resident(), 0u);

  // The next read must miss (the poisoned fill never became resident).
  cluster.client(0).io(*layout, IoOp::kRead, 0, 64 * KiB, [] {});
  sim.run();
  EXPECT_EQ(cache.tier().stats().hits, 0u);
}

TEST(CacheManager, EvictsUnderFullBudget) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, cache_cluster_config());
  // 4 slots of 64 KiB; the working set is 8 chunks, so steady state cycles.
  pfs::CacheManager cache(cluster, manager_config(256 * KiB));
  cluster.client(0).set_cache(&cache);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);

  for (int pass = 0; pass < 3; ++pass) {
    for (Bytes c = 0; c < 8; ++c) {
      cluster.client(0).io(*layout, IoOp::kRead, c * 64 * KiB, 64 * KiB,
                           [] {});
      sim.run();
    }
  }
  const CacheTier::Stats& s = cache.tier().stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(cache.tier().resident(), cache.tier().slots());
  EXPECT_EQ(s.lookups, s.hits + s.misses);
  EXPECT_EQ(s.admissions, s.fills_completed + s.fills_discarded);
}

TEST(CacheManager, ResplitClearsAndKeepsServing) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, cache_cluster_config());
  pfs::CacheManager cache(cluster, manager_config(1 * MiB, 2));
  cluster.client(0).set_cache(&cache);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);

  cluster.client(0).io(*layout, IoOp::kRead, 0, 256 * KiB, [] {});
  sim.run();
  EXPECT_GT(cache.tier().resident(), 0u);

  // Narrowing the spread re-maps every slot address: the directory drops.
  cache.set_active_devices(1);
  EXPECT_EQ(cache.stats().resplits, 1u);
  EXPECT_EQ(cache.stats().clears, 1u);
  EXPECT_EQ(cache.tier().resident(), 0u);

  // The cache keeps working at the new spread.
  cluster.client(0).io(*layout, IoOp::kRead, 0, 256 * KiB, [] {});
  sim.run();
  cluster.client(0).io(*layout, IoOp::kRead, 0, 256 * KiB, [] {});
  sim.run();
  EXPECT_GT(cache.tier().stats().hits, 0u);
  EXPECT_EQ(cache.active_devices(), 1u);
}

TEST(CacheManager, ZeroBudgetIsDisabled) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, cache_cluster_config());
  pfs::CacheManager cache(cluster, manager_config(0));
  EXPECT_FALSE(cache.enabled());
  // A disabled manager attached to a client must leave the data path
  // untouched: run the same read with and without the manager and compare
  // completion times exactly.
  cluster.client(0).set_cache(&cache);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  cluster.client(0).io(*layout, IoOp::kRead, 0, 256 * KiB, [] {});
  sim.run();
  const Seconds with_disabled_cache = sim.now();

  sim::Simulator bare_sim;
  pfs::Cluster bare(bare_sim, cache_cluster_config());
  auto bare_layout = pfs::make_fixed_layout(bare.num_servers(), 64 * KiB);
  bare.client(0).io(*bare_layout, IoOp::kRead, 0, 256 * KiB, [] {});
  bare_sim.run();
  EXPECT_EQ(with_disabled_cache, bare_sim.now());
}

// ---------------------------------------------------------------------------
// Cache-aware Analysis Phase.

core::CostParams cached_planner_params() {
  core::CostParams p = core::make_cost_params(
      6, 3, storage::hdd_profile(), storage::pcie_ssd_profile(),
      1.0 / (117.0 * 1024 * 1024));
  p.sserver_factors = {1.0, 4.0, 4.0};
  return p;
}

/// A skewed re-read trace: `ranks` processes repeatedly read a hot prefix
/// of the file — the shape whose replayed hit rate justifies a reservation.
std::vector<trace::TraceRecord> skewed_read_trace(std::uint32_t ranks,
                                                  int rounds) {
  std::vector<trace::TraceRecord> records;
  Seconds t = 0.0;
  for (int round = 0; round < rounds; ++round) {
    for (std::uint32_t rank = 0; rank < ranks; ++rank) {
      for (Bytes c = 0; c < 32; ++c) {
        trace::TraceRecord r;
        r.rank = rank;
        r.op = IoOp::kRead;
        r.offset = c * 64 * KiB;
        r.size = 64 * KiB;
        r.t_start = t;
        t += 1e-6;
        r.t_end = t;
        records.push_back(r);
      }
    }
  }
  std::sort(records.begin(), records.end(),
            [](const trace::TraceRecord& a, const trace::TraceRecord& b) {
              return a.offset < b.offset;
            });
  return records;
}

TEST(AnalyzeCached, DisabledOptionsEqualAnalyze) {
  const auto records = skewed_read_trace(8, 2);
  const core::CostParams params = cached_planner_params();
  const auto plain = core::analyze(records, params);
  const auto cached =
      core::analyze_cached(records, params, core::CachePlannerOptions{});
  ASSERT_FALSE(cached.cache.has_value());
  ASSERT_EQ(cached.rst.size(), plain.rst.size());
  for (std::size_t i = 0; i < plain.rst.size(); ++i) {
    EXPECT_EQ(cached.rst.entry(i).stripes, plain.rst.entry(i).stripes);
    EXPECT_EQ(cached.rst.entry(i).members, plain.rst.entry(i).members);
  }
  EXPECT_EQ(cached.total_model_cost(), plain.total_model_cost());
}

TEST(AnalyzeCached, ReservesFastDevicesUnderSkewedReuse) {
  // Heavy reuse from many ranks over a 2 MiB hot set, with 2 of 3 SServers
  // aged 4x: concentrating every region on the one fresh device would
  // NIC-saturate, so the sweep's bandwidth floor makes the reservation win.
  const auto records = skewed_read_trace(32, 4);
  core::CachePlannerOptions cache;
  cache.budget = 4 * MiB;
  cache.chunk = 64 * KiB;
  cache.max_devices = 2;
  const auto plan =
      core::analyze_cached(records, cached_planner_params(), cache);
  ASSERT_TRUE(plan.cache.has_value());
  EXPECT_GE(plan.cache->devices, 1u);
  EXPECT_LE(plan.cache->devices, 2u);
  // Every chunk is re-read `ranks * rounds` times: the replayed hit rate
  // must be high once the directory warms.
  EXPECT_GT(plan.cache->expected_hit_rate, 0.5);
  // The reservation is carved out of the planned regions' membership.
  for (const auto& region : plan.rst.entries()) {
    if (region.members.empty()) continue;
    EXPECT_LE(region.members[1], 3u - plan.cache->devices);
  }
}

TEST(AnalyzeCached, ReadOnceTraceDeclinesReservation) {
  // IOR-style read-once traffic has no reuse: every chunk misses, so the
  // cache only adds fill traffic and the sweep must keep r = 0.
  std::vector<trace::TraceRecord> records;
  Seconds t = 0.0;
  for (std::uint32_t rank = 0; rank < 8; ++rank) {
    for (Bytes c = 0; c < 64; ++c) {
      trace::TraceRecord r;
      r.rank = rank;
      r.op = IoOp::kRead;
      r.offset = (rank * 64 + c) * 64 * KiB;
      r.size = 64 * KiB;
      r.t_start = t;
      t += 1e-6;
      r.t_end = t;
      records.push_back(r);
    }
  }
  core::CachePlannerOptions cache;
  cache.budget = 4 * MiB;
  cache.chunk = 64 * KiB;
  cache.max_devices = 2;
  const auto plan =
      core::analyze_cached(records, cached_planner_params(), cache);
  EXPECT_FALSE(plan.cache.has_value());
}

// ---------------------------------------------------------------------------
// Harness-level guarantees.

workloads::ZipfConfig small_zipf() {
  workloads::ZipfConfig z;
  z.file_size = 16 * MiB;
  z.request_size = 64 * KiB;
  z.processes = 4;
  z.reads_per_process = 64;
  z.read_phases = 2;
  return z;
}

harness::ExperimentOptions cached_options(Bytes budget, bool blind) {
  harness::ExperimentOptions opts;
  opts.calibration.samples_per_size = 200;
  opts.calibration.beta_samples = 200;
  opts.cache.budget = budget;
  opts.cache.chunk = 64 * KiB;
  opts.cache.devices = 1;
  opts.cache.blind = blind;
  return opts;
}

TEST(CacheHarness, ZeroBudgetRunsAreByteIdentical) {
  const auto bundle = harness::zipf_bundle(small_zipf());
  const auto scheme = harness::LayoutScheme::fixed(64 * KiB);

  harness::Experiment bare((harness::ExperimentOptions()));
  const auto base = bare.run(bundle, scheme);

  harness::Experiment zero(cached_options(0, true));
  const auto with_zero_budget = zero.run(bundle, scheme);

  EXPECT_EQ(base.read.makespan, with_zero_budget.read.makespan);
  EXPECT_EQ(base.write.makespan, with_zero_budget.write.makespan);
  EXPECT_EQ(base.total.makespan, with_zero_budget.total.makespan);
  EXPECT_FALSE(with_zero_budget.cache.has_value());
}

TEST(CacheHarness, CacheEnabledIsWidthInvariant) {
  // With the cache on, the run must be byte-identical across the sequential
  // engine and every PDES width: all directory mutations happen on the app
  // LP, and fills travel the same relays as foreground traffic.
  const auto bundle = harness::zipf_bundle(small_zipf());
  const auto scheme = harness::LayoutScheme::fixed(64 * KiB);

  std::vector<harness::SchemeResult> runs;
  for (const unsigned width : {0u, 1u, 2u, 4u}) {
    harness::ExperimentOptions opts = cached_options(8 * MiB, true);
    opts.sim_threads = width;
    harness::Experiment exp(opts);
    runs.push_back(exp.run(bundle, scheme));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].read.makespan, runs[i].read.makespan) << "width " << i;
    EXPECT_EQ(runs[0].write.makespan, runs[i].write.makespan);
    ASSERT_TRUE(runs[i].cache.has_value());
    EXPECT_EQ(runs[0].cache->tier.hits, runs[i].cache->tier.hits);
    EXPECT_EQ(runs[0].cache->tier.admissions, runs[i].cache->tier.admissions);
    EXPECT_EQ(runs[0].cache->tier.evictions, runs[i].cache->tier.evictions);
    EXPECT_EQ(runs[0].cache->fill_bytes, runs[i].cache->fill_bytes);
  }
  EXPECT_GT(runs[0].cache->tier.hits, 0u);
}

TEST(CacheHarness, BlindKeepsThePlannerUntouched) {
  // The blind arm must not change the Analysis Phase: same regions, same
  // stripes, no reservation — only the measured run differs (the bolted-on
  // cache contends with foreground striping over the same devices).
  const auto bundle = harness::zipf_bundle(small_zipf());
  const auto scheme = harness::LayoutScheme::harl();

  harness::Experiment bare((harness::ExperimentOptions()));
  const auto base = bare.run(bundle, scheme);

  harness::Experiment blind(cached_options(8 * MiB, true));
  const auto blinded = blind.run(bundle, scheme);

  ASSERT_TRUE(base.plan.has_value());
  ASSERT_TRUE(blinded.plan.has_value());
  EXPECT_FALSE(blinded.plan->cache.has_value());
  ASSERT_EQ(base.plan->rst.size(), blinded.plan->rst.size());
  for (std::size_t i = 0; i < base.plan->rst.size(); ++i) {
    EXPECT_EQ(base.plan->rst.entry(i).stripes,
              blinded.plan->rst.entry(i).stripes);
  }
  // The cache ran (blind mode arms it regardless of the plan).
  ASSERT_TRUE(blinded.cache.has_value());
  EXPECT_GT(blinded.cache->tier.lookups, 0u);
}

TEST(CacheHarness, AwareModeUsesThePlanReservation) {
  // Aware mode delegates the decision to analyze_cached: when the model
  // declines (r = 0 wins), the measured run is cache-less even though the
  // cache flags are set — the reservation is the planner's to make.
  const auto bundle = harness::zipf_bundle(small_zipf());
  const auto scheme = harness::LayoutScheme::harl();

  harness::Experiment aware(cached_options(8 * MiB, false));
  const auto result = aware.run(bundle, scheme);
  ASSERT_TRUE(result.plan.has_value());
  if (result.plan->cache.has_value()) {
    ASSERT_TRUE(result.cache.has_value());
    EXPECT_EQ(result.cache->active_devices, result.plan->cache->devices);
    EXPECT_NE(result.layout_description.find("cache-reserved"),
              std::string::npos);
  } else {
    EXPECT_FALSE(result.cache.has_value());
  }
}

}  // namespace
}  // namespace harl
