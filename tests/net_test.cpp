// Unit tests for the network model.
#include <gtest/gtest.h>

#include "src/net/network.hpp"
#include "src/sim/simulator.hpp"

namespace harl::net {
namespace {

NetworkParams simple_params() {
  NetworkParams p;
  p.per_byte = 1e-6;       // 1 us per byte: easy arithmetic
  p.message_latency = 1e-3;
  return p;
}

TEST(Network, PresetsLookLikeTheirLinkSpeeds) {
  const NetworkParams ge = gigabit_ethernet();
  EXPECT_NEAR(1.0 / ge.per_byte / (1024.0 * 1024.0), 117.0, 1.0);
  const NetworkParams tge = ten_gigabit_ethernet();
  EXPECT_LT(tge.per_byte, ge.per_byte);
}

TEST(Network, SingleTransferCrossesTwoLinks) {
  sim::Simulator sim;
  Network nw(sim, simple_params(), 1, 1);
  Seconds done = 0.0;
  nw.transfer(0, 0, 1000, Direction::kServerToClient, [&] { done = sim.now(); });
  sim.run();
  // Two hops: each latency + 1000 bytes * 1us.
  EXPECT_DOUBLE_EQ(done, 2 * (1e-3 + 1000e-6));
}

TEST(Network, ServerLinkSerializesConcurrentPulls) {
  sim::Simulator sim;
  Network nw(sim, simple_params(), 2, 1);
  std::vector<Seconds> done;
  // Two clients pull from the same server at t=0: the server NIC serializes
  // the first hop.
  nw.transfer(0, 0, 1000, Direction::kServerToClient, [&] { done.push_back(sim.now()); });
  nw.transfer(1, 0, 1000, Direction::kServerToClient, [&] { done.push_back(sim.now()); });
  sim.run();
  const Seconds hop = 1e-3 + 1000e-6;
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 2 * hop);
  EXPECT_DOUBLE_EQ(done[1], 3 * hop);  // queued one hop behind on the server NIC
}

TEST(Network, DistinctServersDoNotContend) {
  sim::Simulator sim;
  Network nw(sim, simple_params(), 2, 2);
  std::vector<Seconds> done;
  nw.transfer(0, 0, 1000, Direction::kServerToClient, [&] { done.push_back(sim.now()); });
  nw.transfer(1, 1, 1000, Direction::kServerToClient, [&] { done.push_back(sim.now()); });
  sim.run();
  const Seconds hop = 1e-3 + 1000e-6;
  EXPECT_DOUBLE_EQ(done[0], 2 * hop);
  EXPECT_DOUBLE_EQ(done[1], 2 * hop);
}

TEST(Network, WriteDirectionLoadsClientLinkFirst) {
  sim::Simulator sim;
  Network nw(sim, simple_params(), 1, 2);
  // Client pushes to two servers: its own NIC is the shared first hop.
  std::vector<Seconds> done;
  nw.transfer(0, 0, 1000, Direction::kClientToServer, [&] { done.push_back(sim.now()); });
  nw.transfer(0, 1, 1000, Direction::kClientToServer, [&] { done.push_back(sim.now()); });
  sim.run();
  const Seconds hop = 1e-3 + 1000e-6;
  EXPECT_DOUBLE_EQ(done[0], 2 * hop);
  EXPECT_DOUBLE_EQ(done[1], 3 * hop);
  EXPECT_DOUBLE_EQ(nw.client_link(0).busy_time(), 2 * hop);
}

TEST(Network, ClientTransferSameNodeIsFree) {
  sim::Simulator sim;
  Network nw(sim, simple_params(), 2, 1);
  bool fired = false;
  nw.client_transfer(1, 1, 1 * GiB, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(nw.client_link(1).busy_time(), 0.0);
}

TEST(Network, ClientTransferCrossNodeUsesBothLinks) {
  sim::Simulator sim;
  Network nw(sim, simple_params(), 2, 1);
  Seconds done = 0.0;
  nw.client_transfer(0, 1, 500, [&] { done = sim.now(); });
  sim.run();
  const Seconds hop = 1e-3 + 500e-6;
  EXPECT_DOUBLE_EQ(done, 2 * hop);
  EXPECT_DOUBLE_EQ(nw.client_link(0).busy_time(), hop);
  EXPECT_DOUBLE_EQ(nw.client_link(1).busy_time(), hop);
}

TEST(Network, RejectsEmptyTopology) {
  sim::Simulator sim;
  EXPECT_THROW(Network(sim, simple_params(), 0, 1), std::invalid_argument);
  EXPECT_THROW(Network(sim, simple_params(), 1, 0), std::invalid_argument);
}

TEST(NetworkProfiler, RecoversParameters) {
  const NetworkParams actual = gigabit_ethernet();
  const NetworkParams fitted = profile_network(actual, 200);
  EXPECT_NEAR(fitted.per_byte, actual.per_byte, actual.per_byte * 1e-6);
  EXPECT_NEAR(fitted.message_latency, actual.message_latency,
              actual.message_latency * 1e-6);
}

TEST(NetworkProfiler, RejectsBadArguments) {
  EXPECT_THROW(profile_network(gigabit_ethernet(), 0), std::invalid_argument);
  EXPECT_THROW(profile_network(gigabit_ethernet(), 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace harl::net
