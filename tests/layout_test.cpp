// Tests for file data layouts: fixed/varied striping and region-level
// layouts, including the partition property (every mapped request exactly
// tiles its byte range) checked over randomized parameter sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "src/common/rng.hpp"
#include "src/pfs/layout.hpp"
#include "src/pfs/region_layout.hpp"

namespace harl::pfs {
namespace {

/// Verifies that `subs` exactly tiles [offset, offset+size) with no overlap,
/// by reconstructing coverage from (file_offset, size) of each sub-request
/// combined with per-(server, object) contiguity.
void expect_partition(const std::vector<SubRequest>& subs, Bytes offset,
                      Bytes size, const Layout& layout) {
  Bytes total = 0;
  for (const auto& sub : subs) {
    EXPECT_GT(sub.size, 0u);
    EXPECT_LT(sub.server, layout.server_count());
    total += sub.size;
  }
  EXPECT_EQ(total, size);

  // Cross-check against the piecewise walk when available: per-server byte
  // totals must agree.
  if (const auto* varied = dynamic_cast<const VariedStripeLayout*>(&layout)) {
    std::map<std::size_t, Bytes> agg;
    std::map<std::size_t, Bytes> pieces;
    for (const auto& sub : subs) agg[sub.server] += sub.size;
    for (const auto& sub : varied->map_pieces(offset, size)) {
      pieces[sub.server] += sub.size;
    }
    EXPECT_EQ(agg, pieces);
  }
}

TEST(FixedLayout, MapsOnePeriodRoundRobin) {
  auto layout = make_fixed_layout(4, 64 * KiB);
  const auto subs = layout->map(0, 256 * KiB);
  ASSERT_EQ(subs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(subs[i].server, i);
    EXPECT_EQ(subs[i].size, 64 * KiB);
    EXPECT_EQ(subs[i].server_offset, 0u);
    EXPECT_EQ(subs[i].file_offset, i * 64 * KiB);
  }
}

TEST(FixedLayout, SecondPeriodAdvancesServerOffsets) {
  auto layout = make_fixed_layout(2, 1 * KiB);
  const auto subs = layout->map(2 * KiB, 2 * KiB);  // period 1 exactly
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].server_offset, 1 * KiB);
  EXPECT_EQ(subs[1].server_offset, 1 * KiB);
}

TEST(FixedLayout, UnalignedRequestSplitsAtStripeBoundaries) {
  auto layout = make_fixed_layout(2, 100);
  // Request [150, 350): 50 bytes on server 1 (period 0), 100 on server 0
  // (period 1), 50 on server 1 (period 1) -> aggregated per server.
  const auto subs = layout->map(150, 200);
  ASSERT_EQ(subs.size(), 2u);
  // Order by file_offset: server 1 first (its extent starts at 150).
  EXPECT_EQ(subs[0].server, 1u);
  EXPECT_EQ(subs[0].size, 100u);
  EXPECT_EQ(subs[0].server_offset, 50u);
  EXPECT_EQ(subs[1].server, 0u);
  EXPECT_EQ(subs[1].size, 100u);
  EXPECT_EQ(subs[1].server_offset, 100u);
}

TEST(VariedLayout, ZeroStripeServersAreSkipped) {
  VariedStripeLayout layout({0, 0, 64 * KiB, 64 * KiB});
  const auto subs = layout.map(0, 256 * KiB);
  for (const auto& sub : subs) EXPECT_GE(sub.server, 2u);
  Bytes total = 0;
  for (const auto& sub : subs) total += sub.size;
  EXPECT_EQ(total, 256 * KiB);
}

TEST(VariedLayout, TwoTierStripesFollowPeriodStructure) {
  // Paper Fig. 2b-style: 2 HServers @ 36K, 1 SServer @ 148K; period 220K.
  auto layout = make_two_tier_layout(2, 36 * KiB, 1, 148 * KiB);
  EXPECT_EQ(layout->period(), 220 * KiB);
  const auto subs = layout->map(0, 220 * KiB);
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0].size, 36 * KiB);
  EXPECT_EQ(subs[1].size, 36 * KiB);
  EXPECT_EQ(subs[2].size, 148 * KiB);
  EXPECT_EQ(subs[2].server, 2u);
}

TEST(VariedLayout, AggregatedExtentIsContiguousOnServer) {
  auto layout = make_fixed_layout(2, 100);
  // Request spans 3 periods: each server's pieces fuse into one extent.
  const auto subs = layout->map(0, 600);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].size, 300u);
  EXPECT_EQ(subs[0].server_offset, 0u);
  EXPECT_EQ(subs[1].size, 300u);
}

TEST(VariedLayout, EmptyRequestMapsToNothing) {
  auto layout = make_fixed_layout(3, 64 * KiB);
  EXPECT_TRUE(layout->map(123, 0).empty());
}

TEST(VariedLayout, RejectsDegenerateConfigs) {
  EXPECT_THROW(VariedStripeLayout({}), std::invalid_argument);
  EXPECT_THROW(VariedStripeLayout({0, 0}), std::invalid_argument);
}

TEST(VariedLayout, DescribeCollapsesRuns) {
  auto layout = make_two_tier_layout(6, 36 * KiB, 2, 148 * KiB);
  EXPECT_EQ(layout->describe(), "6x36K+2x148K");
  auto fixed = make_fixed_layout(8, 64 * KiB);
  EXPECT_EQ(fixed->describe(), "8x64K");
}

TEST(VariedLayout, MapPiecesWalksFileOrder) {
  auto layout = make_fixed_layout(2, 100);
  const auto pieces = layout->map_pieces(50, 200);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].file_offset, 50u);
  EXPECT_EQ(pieces[0].size, 50u);
  EXPECT_EQ(pieces[1].file_offset, 100u);
  EXPECT_EQ(pieces[1].size, 100u);
  EXPECT_EQ(pieces[2].file_offset, 200u);
  EXPECT_EQ(pieces[2].size, 50u);
}

// Property sweep: random layouts and requests, aggregated map vs piecewise
// walk must agree and tile exactly.
struct LayoutCase {
  std::size_t M;
  std::size_t N;
  Bytes h;
  Bytes s;
};

class LayoutPartitionProperty : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(LayoutPartitionProperty, MapTilesRequestsExactly) {
  const LayoutCase c = GetParam();
  auto layout = make_two_tier_layout(c.M, c.h, c.N, c.s);
  Rng rng(c.M * 1000 + c.N * 100 + c.h + c.s);
  // Cap sizes so the O(size/stripe) reference walk stays fast for
  // byte-granularity stripes.
  const Bytes max_size = std::min<Bytes>(4 * MiB, layout->period() * 50);
  for (int i = 0; i < 200; ++i) {
    const Bytes offset = rng.uniform_u64(0, 8 * MiB);
    const Bytes size = rng.uniform_u64(1, max_size);
    const auto subs = layout->map(offset, size);
    expect_partition(subs, offset, size, *layout);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutPartitionProperty,
    ::testing::Values(LayoutCase{6, 2, 64 * KiB, 64 * KiB},
                      LayoutCase{6, 2, 36 * KiB, 148 * KiB},
                      LayoutCase{6, 2, 0, 64 * KiB},
                      LayoutCase{2, 6, 4 * KiB, 2 * MiB},
                      LayoutCase{7, 1, 13, 29},      // odd byte-level stripes
                      LayoutCase{1, 1, 1, 5},
                      LayoutCase{4, 0, 128 * KiB, 0},
                      LayoutCase{0, 3, 0, 32 * KiB}));

TEST(VariedLayout, PiecesCountStripeUnits) {
  auto layout = make_fixed_layout(2, 100);
  // Request spanning 3 periods: each server's extent merges 3 stripe units.
  for (const auto& sub : layout->map(0, 600)) EXPECT_EQ(sub.pieces, 3u);
  // Single-period partial: one unit.
  for (const auto& sub : layout->map(0, 150)) EXPECT_EQ(sub.pieces, 1u);
}

class LayoutPiecesProperty : public ::testing::TestWithParam<int> {};

TEST_P(LayoutPiecesProperty, PiecesMatchThePiecewiseWalk) {
  auto layout = make_two_tier_layout(3, 20 * KiB, 2, 52 * KiB);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 150; ++i) {
    const Bytes offset = rng.uniform_u64(0, 4 * MiB);
    const Bytes size = rng.uniform_u64(1, 2 * MiB);
    std::map<std::size_t, Bytes> walk_pieces;
    for (const auto& piece : layout->map_pieces(offset, size)) {
      ++walk_pieces[piece.server];
    }
    for (const auto& sub : layout->map(offset, size)) {
      EXPECT_EQ(sub.pieces, walk_pieces[sub.server])
          << "o=" << offset << " r=" << size << " server=" << sub.server;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutPiecesProperty, ::testing::Values(1, 2));

// ------------------------------------------------------------- regions ----

RegionLayout three_region_layout() {
  // Paper Fig. 6's example RST.
  return RegionLayout(6, 2,
                      {RegionSpec{0, 16 * KiB, 64 * KiB},
                       RegionSpec{128 * MiB, 36 * KiB, 144 * KiB},
                       RegionSpec{192 * MiB, 26 * KiB, 80 * KiB}});
}

TEST(RegionLayout, RegionOfFindsGoverningRegion) {
  const auto layout = three_region_layout();
  EXPECT_EQ(layout.region_of(0), 0u);
  EXPECT_EQ(layout.region_of(128 * MiB - 1), 0u);
  EXPECT_EQ(layout.region_of(128 * MiB), 1u);
  EXPECT_EQ(layout.region_of(300 * MiB), 2u);
}

TEST(RegionLayout, SubRequestsCarryRegionObjectIds) {
  const auto layout = three_region_layout();
  for (const auto& sub : layout.map(10 * MiB, 1 * MiB)) EXPECT_EQ(sub.object, 0u);
  for (const auto& sub : layout.map(130 * MiB, 1 * MiB)) EXPECT_EQ(sub.object, 1u);
  for (const auto& sub : layout.map(200 * MiB, 1 * MiB)) EXPECT_EQ(sub.object, 2u);
}

TEST(RegionLayout, RequestSpanningBoundarySplitsPerRegion) {
  const auto layout = three_region_layout();
  const Bytes offset = 128 * MiB - 512 * KiB;
  const auto subs = layout.map(offset, 1 * MiB);
  Bytes region0 = 0;
  Bytes region1 = 0;
  for (const auto& sub : subs) {
    (sub.object == 0 ? region0 : region1) += sub.size;
    EXPECT_LE(sub.object, 1u);
  }
  EXPECT_EQ(region0, 512 * KiB);
  EXPECT_EQ(region1, 512 * KiB);
}

TEST(RegionLayout, RegionRelativeAddressingStartsAtZero) {
  const auto layout = three_region_layout();
  // First bytes of region 1 land at server offset 0 of its objects.
  const auto subs = layout.map(128 * MiB, 36 * KiB);
  ASSERT_FALSE(subs.empty());
  EXPECT_EQ(subs[0].server, 0u);
  EXPECT_EQ(subs[0].server_offset, 0u);
}

TEST(RegionLayout, TilesAcrossAllRegions) {
  const auto layout = three_region_layout();
  const Bytes offset = 100 * MiB;
  const Bytes size = 150 * MiB;  // touches all three regions
  Bytes total = 0;
  for (const auto& sub : layout.map(offset, size)) total += sub.size;
  EXPECT_EQ(total, size);
}

TEST(RegionLayout, ValidatesConstruction) {
  EXPECT_THROW(RegionLayout(6, 2, {}), std::invalid_argument);
  EXPECT_THROW(RegionLayout(6, 2, {RegionSpec{10, 64 * KiB, 64 * KiB}}),
               std::invalid_argument);  // must start at 0
  EXPECT_THROW(RegionLayout(6, 2,
                            {RegionSpec{0, 64 * KiB, 64 * KiB},
                             RegionSpec{0, 4 * KiB, 4 * KiB}}),
               std::invalid_argument);  // strictly increasing
  EXPECT_THROW(RegionLayout(6, 2, {RegionSpec{0, 0, 0}}),
               std::invalid_argument);  // all-zero stripes
  EXPECT_THROW(RegionLayout(0, 2, {RegionSpec{0, 64 * KiB, 0}}),
               std::invalid_argument);  // stripes only over absent servers
}

TEST(RegionLayout, DescribeSummarizesRegions) {
  const auto layout = three_region_layout();
  const std::string text = layout.describe();
  EXPECT_NE(text.find("3 regions"), std::string::npos);
  EXPECT_NE(text.find("{16K,64K}"), std::string::npos);
}

TEST(RegionLayout, LastRegionExtendsToInfinity) {
  const auto layout = three_region_layout();
  const auto subs = layout.map(10 * GiB, 1 * MiB);
  Bytes total = 0;
  for (const auto& sub : subs) {
    EXPECT_EQ(sub.object, 2u);
    total += sub.size;
  }
  EXPECT_EQ(total, 1 * MiB);
}

}  // namespace
}  // namespace harl::pfs
