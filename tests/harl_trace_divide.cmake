# CTest script: Algorithm 1 explainability smoke through the real harl_trace
# binary.  `gen` produces a synthetic trace, `divide` re-runs region division
# on it with a tight threshold + chunk cap so the run exercises threshold
# tuning, prints the split-point and region tables, and dumps the full
# per-request CV trajectory as CSV (one row per trace record plus header).
if(NOT DEFINED HARL_TRACE OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DHARL_TRACE=<binary> -DWORK_DIR=<dir>")
endif()

set(trace_file ${WORK_DIR}/divide_smoke_trace.bin)
set(csv_file ${WORK_DIR}/divide_smoke_cv.csv)
file(REMOVE ${trace_file} ${csv_file})

execute_process(
  COMMAND ${HARL_TRACE} gen ${trace_file} requests=2000 file=512M min=4K
          max=2M seed=7
  RESULT_VARIABLE gen_rc
  ERROR_VARIABLE gen_err)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "harl_trace gen failed (${gen_rc}): ${gen_err}")
endif()

execute_process(
  COMMAND ${HARL_TRACE} divide ${trace_file} threshold=0.1 chunk=8M
          csv=${csv_file}
  OUTPUT_VARIABLE div_out
  ERROR_VARIABLE div_err
  RESULT_VARIABLE div_rc)
if(NOT div_rc EQUAL 0)
  message(FATAL_ERROR "harl_trace divide failed (${div_rc}): ${div_err}")
endif()

foreach(needle IN ITEMS "region\\(s\\)" "tuning round" "split points"
        "region boundaries")
  if(NOT div_out MATCHES "${needle}")
    message(FATAL_ERROR "divide output missing '${needle}':\n${div_out}")
  endif()
endforeach()

if(NOT EXISTS ${csv_file})
  message(FATAL_ERROR "divide did not write ${csv_file}")
endif()
file(STRINGS ${csv_file} csv_lines)
list(LENGTH csv_lines csv_len)
list(GET csv_lines 0 csv_header)
if(NOT csv_header STREQUAL "index,offset,size,cv,relative_change,split")
  message(FATAL_ERROR "unexpected CSV header: ${csv_header}")
endif()
# Header + one trajectory sample per trace record.
if(NOT csv_len EQUAL 2001)
  message(FATAL_ERROR "expected 2001 CSV lines, got ${csv_len}")
endif()

# The trajectory must mark at least one split (last column 1) when the run
# reports more than one region.
if(div_out MATCHES "-> 1 region")
  message(FATAL_ERROR "smoke config should split the trace:\n${div_out}")
endif()
set(found_split FALSE)
foreach(line IN LISTS csv_lines)
  if(line MATCHES ",1$")
    set(found_split TRUE)
    break()
  endif()
endforeach()
if(NOT found_split)
  message(FATAL_ERROR "no split markers in ${csv_file}")
endif()
message(STATUS "divide smoke ok")
