# CTest script: tools/obs_report.py --check must fail CLEANLY on malformed
# input — empty files, truncated JSON, and valid JSON of the wrong shape all
# exit non-zero with an "obs_report: FAIL:" message, never a raw Python
# traceback (a traceback in CI reads as a tool crash, not a data problem).
if(NOT DEFINED WORK_DIR OR NOT DEFINED OBS_REPORT)
  message(FATAL_ERROR "pass -DWORK_DIR=<dir> -DOBS_REPORT=<script>")
endif()

find_program(PYTHON3 NAMES python3 python)
if(NOT PYTHON3)
  message(STATUS "python3 not found; skipping obs_report robustness checks")
  return()
endif()

set(bad_file ${WORK_DIR}/obs_report_bad_input.json)

# content .. expected message fragment (EMPTY marks a zero-byte file; cmake
# lists silently drop empty elements, so it cannot be spelled literally)
set(cases
  "EMPTY|Expecting value"                 # empty file
  "{\"schemes\": |Expecting value"        # truncated mid-object
  "null|must be an object"                # wrong shape: JSON null
  "[1, 2]|must be an object"              # wrong shape: list root
  "{\"no_schemes\": 1}|no schemes array"  # right shape, missing envelope
)
foreach(case IN LISTS cases)
  string(REPLACE "|" ";" parts "${case}")
  list(GET parts 0 content)
  list(GET parts 1 expect)
  if(content STREQUAL "EMPTY")
    set(content "")
  endif()
  file(WRITE ${bad_file} "${content}")
  foreach(mode metrics timeseries)
    if(mode STREQUAL "metrics")
      set(cmd ${PYTHON3} ${OBS_REPORT} ${bad_file} --check)
    else()
      set(cmd ${PYTHON3} ${OBS_REPORT} --timeseries ${bad_file} --check)
    endif()
    execute_process(
      COMMAND ${cmd}
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err
      RESULT_VARIABLE rc)
    set(all "${out}${err}")
    if(rc EQUAL 0)
      message(FATAL_ERROR
              "obs_report accepted malformed ${mode} input '${content}'")
    endif()
    if(all MATCHES "Traceback")
      message(FATAL_ERROR "obs_report crashed with a traceback on "
                          "'${content}' (${mode}):\n${all}")
    endif()
    if(NOT all MATCHES "obs_report: FAIL")
      message(FATAL_ERROR "obs_report failed without a clear FAIL message "
                          "on '${content}' (${mode}):\n${all}")
    endif()
    if(NOT all MATCHES "${expect}")
      message(FATAL_ERROR "obs_report error for '${content}' (${mode}) "
                          "lacks '${expect}':\n${all}")
    endif()
  endforeach()
endforeach()

# A missing file is an OSError, not a traceback, either.
execute_process(
  COMMAND ${PYTHON3} ${OBS_REPORT} ${WORK_DIR}/does_not_exist.json --check
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(rc EQUAL 0 OR "${out}${err}" MATCHES "Traceback")
  message(FATAL_ERROR "missing metrics file not handled cleanly:\n${out}${err}")
endif()

file(REMOVE ${bad_file})
message(STATUS "obs_report rejects malformed input with clean FAIL messages")
