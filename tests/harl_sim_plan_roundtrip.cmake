# CTest script: proves the Analysis and Placing phases can run as separate
# processes through the Plan artifact.  Run 1 analyzes and saves the plan
# (`save-plan=`); run 2 loads it (`load-plan=`) without tracing or analysis.
# The loaded plan must reproduce the in-process HARL scheme's simulated
# throughput and layout exactly.
if(NOT DEFINED HARL_SIM OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DHARL_SIM=<harl_sim binary> -DWORK_DIR=<dir>")
endif()

set(workload workload=ior procs=8 file=256M request=512K requests=24)
set(plan_file ${WORK_DIR}/harl_sim_roundtrip.plan)

execute_process(
  COMMAND ${HARL_SIM} ${workload} schemes=harl save-plan=${plan_file}
  OUTPUT_VARIABLE analysis_out
  ERROR_VARIABLE analysis_err
  RESULT_VARIABLE analysis_rc)
if(NOT analysis_rc EQUAL 0)
  message(FATAL_ERROR "analysis run failed (${analysis_rc}): ${analysis_err}")
endif()

execute_process(
  COMMAND ${HARL_SIM} ${workload} schemes=64K load-plan=${plan_file}
  OUTPUT_VARIABLE placing_out
  ERROR_VARIABLE placing_err
  RESULT_VARIABLE placing_rc)
if(NOT placing_rc EQUAL 0)
  message(FATAL_ERROR "placing run failed (${placing_rc}): ${placing_err}")
endif()

# Table rows: label, read MB/s, write MB/s, total MB/s, regions, detail.
set(row_pattern " +([0-9.]+) +([0-9.]+) +([0-9.]+) +([0-9]+) +(region-level[^\n]*)")
if(NOT analysis_out MATCHES "\nHARL${row_pattern}")
  message(FATAL_ERROR "no HARL row in analysis output:\n${analysis_out}")
endif()
set(harl_row "${CMAKE_MATCH_1}|${CMAKE_MATCH_2}|${CMAKE_MATCH_3}|${CMAKE_MATCH_4}|${CMAKE_MATCH_5}")

if(NOT placing_out MATCHES "\nplan${row_pattern}")
  message(FATAL_ERROR "no plan row in placing output:\n${placing_out}")
endif()
set(plan_row "${CMAKE_MATCH_1}|${CMAKE_MATCH_2}|${CMAKE_MATCH_3}|${CMAKE_MATCH_4}|${CMAKE_MATCH_5}")

if(NOT harl_row STREQUAL plan_row)
  message(FATAL_ERROR "loaded plan diverged from in-process analysis:\n"
                      "  HARL: ${harl_row}\n  plan: ${plan_row}")
endif()
message(STATUS "round trip ok: ${plan_row}")
