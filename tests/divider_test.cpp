// Tests for Algorithm 1: CV-driven file region division with threshold
// auto-tuning.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/region_divider.hpp"

namespace harl::core {
namespace {

std::vector<trace::TraceRecord> trace_of_sizes(
    const std::vector<std::pair<Bytes, Bytes>>& offset_size) {
  std::vector<trace::TraceRecord> records;
  for (const auto& [offset, size] : offset_size) {
    trace::TraceRecord r;
    r.op = IoOp::kWrite;
    r.offset = offset;
    r.size = size;
    records.push_back(r);
  }
  return records;
}

/// Contiguous run of `count` requests of equal `size` starting at `base`.
void append_run(std::vector<std::pair<Bytes, Bytes>>& v, Bytes base,
                std::size_t count, Bytes size) {
  for (std::size_t i = 0; i < count; ++i) {
    v.emplace_back(base + i * size, size);
  }
}

TEST(Divider, EmptyTraceYieldsNoRegions) {
  const auto division = divide_regions({});
  EXPECT_TRUE(division.regions.empty());
}

TEST(Divider, UniformTraceIsOneRegion) {
  std::vector<std::pair<Bytes, Bytes>> v;
  append_run(v, 0, 100, 512 * KiB);
  const auto records = trace_of_sizes(v);
  const auto division = divide_regions(records);
  ASSERT_EQ(division.regions.size(), 1u);
  EXPECT_EQ(division.regions[0].offset, 0u);
  EXPECT_EQ(division.regions[0].end, 100 * 512 * KiB);
  EXPECT_DOUBLE_EQ(division.regions[0].avg_request, 512.0 * KiB);
  EXPECT_EQ(division.regions[0].request_count(), 100u);
}

TEST(Divider, DetectsARequestSizeChange) {
  std::vector<std::pair<Bytes, Bytes>> v;
  append_run(v, 0, 50, 128 * KiB);                  // region A: small requests
  append_run(v, 50 * 128 * KiB, 50, 2 * MiB);       // region B: big requests
  const auto records = trace_of_sizes(v);
  const auto division = divide_regions(records);
  ASSERT_GE(division.regions.size(), 2u);
  // The first split point lands at (or right after) the size change.
  EXPECT_NEAR(static_cast<double>(division.regions[1].offset),
              static_cast<double>(50 * 128 * KiB), 2.0 * 2 * MiB);
}

TEST(Divider, FourPaperRegionsAreRecovered) {
  // The paper's non-uniform workload: four regions with distinct sizes.
  std::vector<std::pair<Bytes, Bytes>> v;
  Bytes base = 0;
  const std::vector<std::pair<Bytes, Bytes>> spec = {
      {64 * MiB, 128 * KiB},
      {128 * MiB, 512 * KiB},
      {128 * MiB, 1 * MiB},
      {256 * MiB, 2 * MiB},
  };
  for (const auto& [region_size, req] : spec) {
    append_run(v, base, static_cast<std::size_t>(region_size / req / 8), req);
    base += region_size;
  }
  const auto division = divide_regions(trace_of_sizes(v));
  // At least the four distinct workloads are separated (splits may add one
  // boundary region around each change point).
  EXPECT_GE(division.regions.size(), 4u);
  EXPECT_LE(division.regions.size(), 8u);
}

TEST(Divider, RegionsTileTheTouchedExtent) {
  std::vector<std::pair<Bytes, Bytes>> v;
  append_run(v, 0, 30, 64 * KiB);
  append_run(v, 30 * 64 * KiB, 30, 1 * MiB);
  append_run(v, 30 * 64 * KiB + 30 * MiB, 30, 256 * KiB);
  const auto division = divide_regions(trace_of_sizes(v));
  ASSERT_FALSE(division.regions.empty());
  EXPECT_EQ(division.regions.front().offset, 0u);
  for (std::size_t i = 0; i + 1 < division.regions.size(); ++i) {
    EXPECT_EQ(division.regions[i].end, division.regions[i + 1].offset);
    EXPECT_LT(division.regions[i].offset, division.regions[i].end);
  }
  EXPECT_EQ(division.regions.back().end, 30 * 64 * KiB + 30 * MiB + 30 * 256 * KiB);
}

TEST(Divider, RequestIndicesPartitionTheTrace) {
  std::vector<std::pair<Bytes, Bytes>> v;
  append_run(v, 0, 40, 64 * KiB);
  append_run(v, 40 * 64 * KiB, 40, 2 * MiB);
  const auto records = trace_of_sizes(v);
  const auto division = divide_regions(records);
  std::size_t next = 0;
  for (const auto& reg : division.regions) {
    EXPECT_EQ(reg.first_request, next);
    EXPECT_GT(reg.last_request, reg.first_request);
    next = reg.last_request;
  }
  EXPECT_EQ(next, records.size());
}

TEST(Divider, ConstantSizesNeverSplitEvenWithTinyThreshold) {
  std::vector<std::pair<Bytes, Bytes>> v;
  append_run(v, 0, 200, 1 * MiB);
  DividerOptions opts;
  opts.threshold = 0.01;
  const auto division = divide_regions(trace_of_sizes(v), opts);
  EXPECT_EQ(division.regions.size(), 1u);
}

TEST(Divider, ThresholdTuningCapsRegionCount) {
  // Short constant-size runs with frequent size changes splinter the trace
  // at the default threshold; the region-count cap must then raise the
  // threshold until the division coarsens.
  std::vector<std::pair<Bytes, Bytes>> v;
  Bytes base = 0;
  for (int run = 0; run < 100; ++run) {
    const Bytes size = (run % 2 == 0) ? 64 * KiB : 2 * MiB;
    for (int i = 0; i < 8; ++i) {
      v.emplace_back(base, size);
      base += size;
    }
  }
  DividerOptions opts;
  opts.fixed_region_size = 64 * MiB;
  const auto division = divide_regions(trace_of_sizes(v), opts);
  const Bytes extent = base;
  const std::size_t cap =
      static_cast<std::size_t>((extent + 64 * MiB - 1) / (64 * MiB));
  EXPECT_LE(division.regions.size(), cap);
  EXPECT_GT(division.tuning_rounds, 0);
  EXPECT_GT(division.threshold_used, opts.threshold);
}

TEST(Divider, NoTuningWhenAlreadyUnderCap) {
  std::vector<std::pair<Bytes, Bytes>> v;
  append_run(v, 0, 100, 1 * MiB);
  const auto division = divide_regions(trace_of_sizes(v));
  EXPECT_EQ(division.tuning_rounds, 0);
  EXPECT_DOUBLE_EQ(division.threshold_used, 1.0);
}

TEST(Divider, AverageRequestSizeIsPerRegion) {
  std::vector<std::pair<Bytes, Bytes>> v;
  append_run(v, 0, 50, 100);
  append_run(v, 50 * 100, 50, 10000);
  // The trace extent is tiny, so lower the fixed-region reference
  // accordingly or the region cap would force a single region.
  DividerOptions opts;
  opts.fixed_region_size = 64 * KiB;
  const auto division = divide_regions(trace_of_sizes(v), opts);
  ASSERT_GE(division.regions.size(), 2u);
  // The deviating request that triggers a split is included in the region it
  // closes (as in the printed algorithm), so the small-request region's
  // average is slightly pulled up — but stays far below the big region's.
  EXPECT_LT(division.regions.front().avg_request, 500.0);
  EXPECT_GT(division.regions.back().avg_request, 5000.0);
}

TEST(Divider, SingleRequestTrace) {
  const auto records = trace_of_sizes({{4096, 64 * KiB}});
  const auto division = divide_regions(records);
  ASSERT_EQ(division.regions.size(), 1u);
  EXPECT_EQ(division.regions[0].offset, 0u);  // clamped to file start
  EXPECT_EQ(division.regions[0].end, 4096 + 64 * KiB);
}

TEST(Divider, RejectsUnsortedTraces) {
  auto records = trace_of_sizes({{100, 10}, {50, 10}});
  EXPECT_THROW(divide_regions(records), std::invalid_argument);
}

TEST(Divider, RejectsBadOptions) {
  const auto records = trace_of_sizes({{0, 10}});
  DividerOptions bad;
  bad.threshold = 0.0;
  EXPECT_THROW(divide_regions(records, bad), std::invalid_argument);
  DividerOptions growth;
  growth.threshold_growth = 1.0;
  EXPECT_THROW(divide_regions(records, growth), std::invalid_argument);
}

bool regions_equal(const std::vector<DividedRegion>& a,
                   const std::vector<DividedRegion>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].offset != b[i].offset || a[i].end != b[i].end ||
        a[i].first_request != b[i].first_request ||
        a[i].last_request != b[i].last_request ||
        a[i].avg_request != b[i].avg_request) {
      return false;
    }
  }
  return true;
}

TEST(StreamingDivider, MatchesBatchDivisionExactly) {
  // The streaming form fed one request at a time must reproduce the batch
  // division bit-for-bit (same threshold, no tuning in the stream).
  std::vector<std::pair<Bytes, Bytes>> v;
  append_run(v, 0, 50, 128 * KiB);
  append_run(v, 50 * 128 * KiB, 50, 2 * MiB);
  append_run(v, 50 * 128 * KiB + 100 * MiB, 50, 256 * KiB);
  const auto records = trace_of_sizes(v);
  const auto batch = divide_regions(records);

  StreamingDivider stream(batch.threshold_used);
  for (const auto& r : records) stream.add(r);
  EXPECT_EQ(stream.fed(), records.size());
  const auto streamed = stream.finish();
  EXPECT_TRUE(regions_equal(batch.regions, streamed));
}

TEST(StreamingDivider, RegionCountTracksOpenWindow) {
  StreamingDivider stream(1.0);
  EXPECT_EQ(stream.region_count(), 0u);
  stream.add(0, 64 * KiB);
  EXPECT_EQ(stream.region_count(), 1u);  // the open window counts
  stream.add(64 * KiB, 64 * KiB);
  EXPECT_EQ(stream.region_count(), 1u);
  EXPECT_THROW(stream.add(0, 64 * KiB), std::invalid_argument);  // descending
}

TEST(StreamingDivider, TracedDivisionMatchesPlainAndExplainsItself) {
  // Frequent size flips force threshold tuning; the traced variant must
  // return the identical division plus a coherent diagnostics dump.
  std::vector<std::pair<Bytes, Bytes>> v;
  Bytes base = 0;
  for (int run = 0; run < 60; ++run) {
    const Bytes size = (run % 2 == 0) ? 64 * KiB : 2 * MiB;
    for (int i = 0; i < 6; ++i) {
      v.emplace_back(base, size);
      base += size;
    }
  }
  DividerOptions opts;
  opts.fixed_region_size = 64 * MiB;
  const auto records = trace_of_sizes(v);
  const auto plain = divide_regions(records, opts);

  std::vector<StreamingDivider::CvSample> trajectory;
  std::vector<TuningRound> rounds;
  const auto traced =
      divide_regions_traced(records, opts, &trajectory, &rounds);

  EXPECT_TRUE(regions_equal(plain.regions, traced.regions));
  EXPECT_EQ(traced.threshold_used, plain.threshold_used);
  EXPECT_EQ(traced.tuning_rounds, plain.tuning_rounds);

  // One tuning-round row per attempt, the last row being the accepted one.
  ASSERT_EQ(rounds.size(), static_cast<std::size_t>(plain.tuning_rounds) + 1);
  EXPECT_DOUBLE_EQ(rounds.back().threshold, plain.threshold_used);
  EXPECT_EQ(rounds.back().regions, plain.regions.size());

  // The trajectory covers the accepted round request-for-request, and its
  // split markers are exactly the interior region boundaries.
  ASSERT_EQ(trajectory.size(), records.size());
  std::size_t splits = 0;
  for (const auto& s : trajectory) splits += s.split ? 1 : 0;
  EXPECT_EQ(splits, plain.regions.size() - 1);
}

TEST(Divider, DeterministicForIdenticalInput) {
  std::vector<std::pair<Bytes, Bytes>> v;
  append_run(v, 0, 64, 128 * KiB);
  append_run(v, 64 * 128 * KiB, 64, 1 * MiB);
  const auto records = trace_of_sizes(v);
  const auto a = divide_regions(records);
  const auto b = divide_regions(records);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].offset, b.regions[i].offset);
    EXPECT_EQ(a.regions[i].last_request, b.regions[i].last_request);
  }
}

}  // namespace
}  // namespace harl::core
