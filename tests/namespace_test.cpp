// Tests for the first-class namespace: tenant assignment, per-region replica
// placement, namespace capacity accounting, MDS lifecycle under concurrent
// open/unlink and open storms, the shared (file, chunk) read cache, and the
// population runner — including the failure/rebuild storm and its
// determinism across PDES widths.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <sstream>
#include <vector>

#include "src/harness/population.hpp"
#include "src/middleware/rebuild.hpp"
#include "src/obs/recorder.hpp"
#include "src/pfs/cache_manager.hpp"
#include "src/pfs/cluster.hpp"
#include "src/pfs/mds.hpp"
#include "src/pfs/region_layout.hpp"
#include "src/pfs/replication.hpp"
#include "src/pfs/space.hpp"
#include "src/sim/simulator.hpp"

namespace harl {
namespace {

// ---------------------------------------------------------------- tenants --

TEST(AssignTenants, UniformThetaIsEvenSplit) {
  const auto t = harness::assign_tenants(8, 2, 0.0);
  ASSERT_EQ(t.size(), 8u);
  std::size_t c0 = 0;
  for (auto x : t) c0 += x == 0 ? 1 : 0;
  EXPECT_EQ(c0, 4u);
}

TEST(AssignTenants, ZipfSkewFavorsTenantZero) {
  const auto t = harness::assign_tenants(9, 3, 1.0);
  EXPECT_EQ(t.front(), 0u);  // the hot tenant claims the first file
  std::vector<std::size_t> count(3, 0);
  for (auto x : t) ++count[x];
  EXPECT_GT(count[0], count[1]);
  EXPECT_GT(count[1], count[2]);
  EXPECT_GE(count[2], 1u);  // D'Hondt still gives the cold tenant a share
  // Pure function of the spec.
  EXPECT_EQ(t, harness::assign_tenants(9, 3, 1.0));
}

TEST(MakePopulation, ShapesRotateAndNamesEncodeTenancy) {
  harness::PopulationSpec spec;
  spec.files = 4;
  spec.tenants = 2;
  spec.processes = 2;
  spec.file_size = 2 * MiB;
  spec.request_size = 128 * KiB;
  const auto pop = harness::make_population(spec);
  ASSERT_EQ(pop.size(), 4u);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_EQ(pop[i].id, i);
    EXPECT_EQ(pop[i].bundle.processes, 2u);
    EXPECT_EQ(pop[i].name, "t" + std::to_string(pop[i].tenant) + "/f" +
                               std::to_string(i) + ".dat");
    EXPECT_EQ(pop[i].bundle.name, pop[i].name);
  }
  // id % 3 == 2 is the multi-region shape: its regions sum to the file size.
  EXPECT_EQ(pop[2].size, spec.file_size);
}

// --------------------------------------------------------------- replicas --

TEST(ReplicaMap, ChainedDeclustering) {
  const auto map = pfs::ReplicaMap::chained(4);
  EXPECT_EQ(map.replica_server(0, 0), 1u);
  EXPECT_EQ(map.replica_server(0, 1), 2u);
  EXPECT_EQ(map.replica_server(3, 0), 0u);  // wraps
  // Every epoch of a region shares one replica home (object id partitioning
  // is epoch * kObjectsPerEpoch + region).
  EXPECT_EQ(map.replica_server(1, 2 + 3 * pfs::ReplicaMap::kObjectsPerEpoch),
            map.replica_server(1, 2));
  // A replica never lands on its primary.
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::uint32_t r = 0; r < 8; ++r) {
      EXPECT_NE(map.replica_server(p, r), p);
    }
  }
  EXPECT_THROW(pfs::ReplicaMap::chained(1), std::invalid_argument);
}

TEST(ReplicaMap, ReplicaImageKeepsExtentMovesObjectBand) {
  const auto map = pfs::ReplicaMap::chained(4);
  pfs::SubRequest sub;
  sub.server = 2;
  sub.object = 5;
  sub.server_offset = 192 * KiB;
  sub.size = 64 * KiB;
  sub.file_offset = 1 * MiB;
  sub.pieces = 3;
  const pfs::SubRequest rep = map.replica_of(sub);
  EXPECT_EQ(rep.object, pfs::ReplicaMap::kReplicaObject + 5);
  EXPECT_NE(rep.server, sub.server);
  EXPECT_EQ(rep.server_offset, sub.server_offset);
  EXPECT_EQ(rep.size, sub.size);
  EXPECT_EQ(rep.pieces, sub.pieces);
}

TEST(ReplicaMap, TieredPlacementHonorsRegionTiers) {
  // Tiers {4, 2}: tier 0 = servers 0..3, tier 1 = servers 4..5.  Region 0
  // replicates on the SServer tier, region 1 on the HServer tier.
  const auto map = pfs::ReplicaMap::tiered({4, 2}, {1, 0});
  for (std::size_t p = 0; p < 6; ++p) {
    const std::size_t r0 = map.replica_server(p, 0);
    EXPECT_GE(r0, 4u);
    EXPECT_NE(r0, p);
    const std::size_t r1 = map.replica_server(p, 1);
    EXPECT_LT(r1, 4u);
    EXPECT_NE(r1, p);
  }
  // Regions beyond the table fall back to whole-cluster chaining.
  const auto flat = pfs::ReplicaMap::chained(6);
  EXPECT_EQ(map.replica_server(0, 7), flat.replica_server(0, 7));
}

TEST(NamespaceFootprint, SumsFilesAndChargesReplicas) {
  const auto layout = pfs::make_fixed_layout(4, 64 * KiB);
  std::vector<pfs::NamespaceFile> files;
  files.push_back({layout.get(), 1 * MiB, false});
  files.push_back({layout.get(), 1 * MiB, true});
  const pfs::SpaceUsage usage = pfs::namespace_footprint(files, 4);
  EXPECT_EQ(usage.total, 3 * MiB);  // the replicated file stores two copies
  const Bytes summed = std::accumulate(usage.per_server.begin(),
                                       usage.per_server.end(), Bytes{0});
  EXPECT_EQ(summed, usage.total);
  // A file wider than the namespace is a caller error.
  std::vector<pfs::NamespaceFile> wide = {{layout.get(), 1 * MiB, false}};
  EXPECT_THROW(pfs::namespace_footprint(wide, 2), std::invalid_argument);
}

// -------------------------------------------------------------------- MDS --

TEST(MetadataServer, RemoveWhileLookupQueuedYieldsNull) {
  sim::Simulator sim;
  pfs::MetadataServer mds(sim, 1e-4);
  const auto layout = pfs::make_fixed_layout(4, 64 * KiB);
  mds.register_file("f", layout);

  std::shared_ptr<const pfs::Layout> got = layout;
  bool called = false;
  mds.lookup("f", [&](std::shared_ptr<const pfs::Layout> l) {
    got = std::move(l);
    called = true;
  });
  // The unlink lands while the lookup is still queued: the callback must see
  // the post-unlink namespace, not a layout the MDS no longer owns.
  mds.remove_file("f");
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(got, nullptr);
  EXPECT_FALSE(mds.has_file("f"));
}

TEST(MetadataServer, PlacementLookupCostScalesWithRegions) {
  const Seconds kLookup = 1e-4;
  const Seconds kPerRegion = 2e-6;
  const auto regions3 = std::make_shared<pfs::RegionLayout>(
      2, 2,
      std::vector<pfs::RegionSpec>{
          {0, {64 * KiB, 64 * KiB}},
          {1 * MiB, {128 * KiB, 64 * KiB}},
          {2 * MiB, {64 * KiB, 128 * KiB}},
      });
  EXPECT_EQ(pfs::MetadataServer::region_count_of(*regions3), 3u);
  EXPECT_EQ(
      pfs::MetadataServer::region_count_of(*pfs::make_fixed_layout(4, 64 * KiB)),
      1u);

  sim::Simulator sim;
  pfs::MetadataServer mds(sim, kLookup, kPerRegion);
  mds.register_file("r", regions3);
  mds.placement_lookup("r", [](std::shared_ptr<const pfs::Layout>) {});
  sim.run();
  EXPECT_NEAR(sim.now(), kLookup + 3 * kPerRegion, 1e-12);
}

TEST(MetadataServer, OpenStormQueuesAndLandsInMdsSketch) {
  // Thousands of colliding opens serialize through the MDS FIFO; with
  // observe_mds the queue binds to the "mds" track and resident times land
  // in the recorder's "pfs.mds.time" sketch.
  const std::size_t kOpens = 2000;
  sim::Simulator sim;
  obs::Recorder recorder(obs::Recorder::Options{});
  sim.set_observer(&recorder);
  pfs::ClusterConfig cfg;
  cfg.num_hservers = 2;
  cfg.num_sservers = 2;
  cfg.num_clients = 2;
  cfg.observe_mds = true;
  pfs::Cluster cluster(sim, cfg);
  const auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  cluster.mds().register_file("f", layout);

  for (std::size_t i = 0; i < kOpens; ++i) {
    cluster.mds().lookup("f", [](std::shared_ptr<const pfs::Layout>) {});
  }
  sim.run();
  EXPECT_EQ(cluster.mds().lookups_served(), kOpens);
  // FIFO service: the storm drains in exactly kOpens * lookup_cost.
  EXPECT_NEAR(sim.now(), static_cast<double>(kOpens) * cfg.mds_lookup_cost,
              1e-9);
  std::ostringstream out;
  recorder.write_metrics_json(out, 0);
  EXPECT_NE(out.str().find("pfs.mds.time"), std::string::npos);
}

// ----------------------------------------------------------- shared cache --

pfs::ClusterConfig cache_cluster() {
  pfs::ClusterConfig cfg;
  cfg.num_hservers = 2;
  cfg.num_sservers = 2;
  cfg.num_clients = 2;
  return cfg;
}

TEST(SharedCache, FileNamespacedKeysDoNotAlias) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, cache_cluster());
  pfs::CacheManager::Config ccfg;
  ccfg.budget = 256 * KiB;
  ccfg.chunk = 64 * KiB;
  ccfg.tier = 1;
  ccfg.devices = 1;
  pfs::CacheManager cache(cluster, ccfg);
  cluster.client(0).set_cache(&cache);
  const auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);

  // The same chunk of two different files occupies two directory entries.
  cluster.client(0).io(*layout, IoOp::kRead, 0, 64 * KiB, [] {}, 0);
  sim.run();
  cluster.client(0).io(*layout, IoOp::kRead, 0, 64 * KiB, [] {}, 1);
  sim.run();
  EXPECT_EQ(cache.tier().stats().misses, 2u);
  EXPECT_EQ(cache.tier().resident(), 2u);
  // Each file then hits its own entry.
  cluster.client(0).io(*layout, IoOp::kRead, 0, 64 * KiB, [] {}, 0);
  cluster.client(0).io(*layout, IoOp::kRead, 0, 64 * KiB, [] {}, 1);
  sim.run();
  EXPECT_EQ(cache.tier().stats().hits, 2u);
  // invalidate_file drops exactly one namespace.
  cache.invalidate_file(0);
  EXPECT_EQ(cache.tier().resident(), 1u);
  cluster.client(0).io(*layout, IoOp::kRead, 0, 64 * KiB, [] {}, 1);
  sim.run();
  EXPECT_EQ(cache.tier().stats().hits, 3u);
}

TEST(SharedCache, HotTenantEvictsColdUnderSlru) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, cache_cluster());
  pfs::CacheManager::Config ccfg;
  ccfg.budget = 256 * KiB;  // 4 slots
  ccfg.chunk = 64 * KiB;
  ccfg.tier = 1;
  ccfg.devices = 1;
  ccfg.policy = storage::CachePolicy::kSlru;
  pfs::CacheManager cache(cluster, ccfg);
  cluster.client(0).set_cache(&cache);
  const auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  const auto read = [&](std::uint32_t file, Bytes chunk) {
    cluster.client(0).io(*layout, IoOp::kRead, chunk * 64 * KiB, 64 * KiB,
                         [] {}, file);
    sim.run();
  };

  // Cold tenant (file 1) touches two chunks once.
  read(1, 0);
  read(1, 1);
  // Hot tenant (file 0) cycles four chunks twice: the second pass promotes
  // its entries out of SLRU probation, and the shared budget (4 slots) must
  // shed the cold tenant's never-rehit entries to admit them.
  for (int pass = 0; pass < 2; ++pass) {
    for (Bytes c = 0; c < 4; ++c) read(0, c);
  }
  EXPECT_GT(cache.tier().stats().evictions, 0u);
  const auto before = cache.tier().stats();
  read(1, 0);  // the cold entry is gone — a fresh miss
  EXPECT_EQ(cache.tier().stats().misses, before.misses + 1);
  read(0, 3);  // the hot tenant's protected working set survived
  EXPECT_GT(cache.tier().stats().hits, before.hits);
}

// ------------------------------------------------------------- population --

harness::ExperimentOptions small_options() {
  harness::ExperimentOptions options;
  options.cluster.num_hservers = 2;
  options.cluster.num_sservers = 2;
  options.cluster.num_clients = 2;
  return options;
}

harness::PopulationSpec small_spec(std::size_t files) {
  harness::PopulationSpec spec;
  spec.files = files;
  spec.tenants = 2;
  spec.processes = 2;
  spec.file_size = 2 * MiB;
  spec.request_size = 128 * KiB;
  return spec;
}

TEST(Population, DegenerateSingleFileMovesTheSameBytes) {
  const auto pop = harness::make_population(small_spec(1));
  harness::Experiment experiment(small_options());
  harness::PopulationRunOptions popts;
  popts.replicate = false;
  const auto pr = harness::run_population(
      experiment, pop, harness::LayoutScheme::harl(), popts);
  ASSERT_EQ(pr.files.size(), 1u);

  harness::Experiment solo(small_options());
  const auto sr = solo.run(pop[0].bundle, harness::LayoutScheme::harl());
  EXPECT_EQ(pr.total.bytes, sr.total.bytes);
  EXPECT_EQ(pr.files[0].layout_description, sr.layout_description);
  EXPECT_EQ(pr.files[0].region_count, sr.region_count);
}

TEST(Population, ByteIdenticalAcrossPdesWidths) {
  const auto pop = harness::make_population(small_spec(3));
  std::vector<harness::PopulationResult> results;
  for (unsigned width : {0u, 2u}) {
    harness::ExperimentOptions options = small_options();
    options.sim_threads = width;
    harness::Experiment experiment(options);
    results.push_back(harness::run_population(experiment, pop,
                                              harness::LayoutScheme::harl()));
  }
  ASSERT_EQ(results[0].files.size(), results[1].files.size());
  EXPECT_EQ(results[0].total.makespan, results[1].total.makespan);
  EXPECT_EQ(results[0].total.bytes, results[1].total.bytes);
  for (std::size_t i = 0; i < results[0].files.size(); ++i) {
    EXPECT_EQ(results[0].files[i].total.makespan,
              results[1].files[i].total.makespan);
    EXPECT_EQ(results[0].files[i].total.bytes, results[1].files[i].total.bytes);
  }
}

TEST(Population, ReplicaTierChoiceCoversEveryRegion) {
  const auto pop = harness::make_population(small_spec(1));
  harness::Experiment experiment(small_options());
  const auto sr = experiment.run(pop[0].bundle, harness::LayoutScheme::harl());
  ASSERT_TRUE(sr.plan.has_value());
  const auto tiers =
      mw::choose_replica_tiers(*sr.plan, experiment.cost_params());
  EXPECT_EQ(tiers.size(), sr.plan->rst.size());
  for (auto t : tiers) EXPECT_LT(t, 2u);
}

TEST(Population, FailureStormServesDegradedReadsAndRebuilds) {
  const auto pop = harness::make_population(small_spec(3));

  harness::ExperimentOptions clean = small_options();
  harness::Experiment base(clean);
  const auto healthy = harness::run_population(
      base, pop, harness::LayoutScheme::harl_adaptive());
  EXPECT_EQ(healthy.degraded_reads, 0u);
  EXPECT_GT(healthy.replica_writes, 0u);
  EXPECT_FALSE(healthy.degraded_replan);

  harness::ExperimentOptions failing = small_options();
  failing.cluster.fail_server =
      static_cast<std::int64_t>(failing.cluster.num_hservers +
                                failing.cluster.num_sservers) -
      1;
  failing.cluster.fail_at = 0.001;
  failing.telemetry.interval = 0.01;
  failing.telemetry.slo = 1.0;
  harness::Experiment experiment(failing);
  const auto stormy = harness::run_population(
      experiment, pop, harness::LayoutScheme::harl_adaptive());

  // Degraded reads were served from replicas, the rebuild re-materialized
  // the failed server's share, and its traffic slowed the foreground.
  EXPECT_GT(stormy.degraded_reads, 0u);
  EXPECT_GT(stormy.rebuilt_bytes, 0u);
  EXPECT_GT(stormy.rebuild_chunks, 0u);
  EXPECT_TRUE(stormy.rebuild_done);
  EXPECT_GT(stormy.rebuild_finished_at, failing.cluster.fail_at);
  EXPECT_GT(stormy.total.makespan, healthy.total.makespan);
  // The adaptive layer re-planned around the degraded fleet.
  EXPECT_TRUE(stormy.degraded_replan);
  // Per-tenant SLO attainment is reported for every tenant.
  ASSERT_EQ(stormy.tenant_slo.size(), 2u);
  for (double a : stormy.tenant_slo) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Population, FailureStormIsDeterministicAcrossWidths) {
  const auto pop = harness::make_population(small_spec(2));
  std::vector<harness::PopulationResult> results;
  for (unsigned width : {0u, 2u}) {
    harness::ExperimentOptions options = small_options();
    options.sim_threads = width;
    options.cluster.fail_server = 3;
    options.cluster.fail_at = 0.001;
    harness::Experiment experiment(options);
    results.push_back(harness::run_population(
        experiment, pop, harness::LayoutScheme::harl_adaptive()));
  }
  EXPECT_EQ(results[0].total.makespan, results[1].total.makespan);
  EXPECT_EQ(results[0].degraded_reads, results[1].degraded_reads);
  EXPECT_EQ(results[0].replica_writes, results[1].replica_writes);
  EXPECT_EQ(results[0].rebuilt_bytes, results[1].rebuilt_bytes);
  EXPECT_EQ(results[0].rebuild_finished_at, results[1].rebuild_finished_at);
}

}  // namespace
}  // namespace harl
