// Unit tests for the discrete-event simulator and FIFO resources.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"

namespace harl::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.schedule_after(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2.0);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsDispatchedEvents) {
  Simulator sim;
  for (int i = 0; i < 25; ++i) sim.schedule_at(static_cast<Time>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 25u);
}

TEST(FifoResource, IdleResourceServesImmediately) {
  Simulator sim;
  FifoResource res(sim, "disk");
  Time done = -1.0;
  res.submit(2.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 2.0);
  EXPECT_EQ(res.busy_time(), 2.0);
  EXPECT_EQ(res.jobs(), 1u);
  EXPECT_EQ(res.total_queue_delay(), 0.0);
}

TEST(FifoResource, JobsQueueInFifoOrder) {
  Simulator sim;
  FifoResource res(sim, "disk");
  std::vector<Time> done;
  // Three jobs submitted at t=0 with service 1, 2, 3: finish at 1, 3, 6.
  res.submit(1.0, [&] { done.push_back(sim.now()); });
  res.submit(2.0, [&] { done.push_back(sim.now()); });
  res.submit(3.0, [&] { done.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(done, (std::vector<Time>{1.0, 3.0, 6.0}));
  EXPECT_EQ(res.busy_time(), 6.0);
  EXPECT_EQ(res.total_queue_delay(), 1.0 + 3.0);
}

TEST(FifoResource, LateArrivalsDoNotQueueBehindIdleTime) {
  Simulator sim;
  FifoResource res(sim, "disk");
  Time done = 0.0;
  sim.schedule_at(10.0, [&] {
    res.submit(1.0, [&] { done = sim.now(); });
  });
  res.submit(1.0, [] {});
  sim.run();
  EXPECT_EQ(done, 11.0);  // idle gap between jobs is not charged
  EXPECT_EQ(res.busy_time(), 2.0);
}

TEST(FifoResource, UtilizationAgainstHorizon) {
  Simulator sim;
  FifoResource res(sim, "x");
  res.submit(2.0, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(res.utilization(4.0), 0.5);
  EXPECT_DOUBLE_EQ(res.utilization(0.0), 0.0);
}

TEST(FifoResource, RejectsNegativeService) {
  Simulator sim;
  FifoResource res(sim, "x");
  EXPECT_THROW(res.submit(-0.5, [] {}), std::invalid_argument);
}

TEST(FifoResource, ResetStatsKeepsCommitments) {
  Simulator sim;
  FifoResource res(sim, "x");
  res.submit(5.0, [] {});
  res.reset_stats();
  EXPECT_EQ(res.busy_time(), 0.0);
  EXPECT_EQ(res.jobs(), 0u);
  // The horizon survives: a new job queues behind the in-flight one.
  Time done = 0.0;
  res.submit(1.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 6.0);
}

TEST(JoinCounter, FiresAfterLastChild) {
  Simulator sim;
  bool fired = false;
  auto join = std::make_shared<JoinCounter>(3, [&] { fired = true; });
  join->done();
  join->done();
  EXPECT_FALSE(fired);
  join->done();
  EXPECT_TRUE(fired);
}

TEST(JoinCounter, RejectsZeroChildrenAndOverNotification) {
  EXPECT_THROW(JoinCounter(0, [] {}), std::invalid_argument);
  JoinCounter j(1, [] {});
  j.done();
  EXPECT_THROW(j.done(), std::logic_error);
}

}  // namespace
}  // namespace harl::sim
