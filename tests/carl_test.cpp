// Tests for the CARL baseline (paper reference [31]): region-level
// placement where each region lives entirely on one tier.
#include <gtest/gtest.h>

#include "src/core/planner.hpp"
#include "src/harness/experiment.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {
namespace {

PlannerOptions fine_regions() {
  // The test traces are small (tens of MiB); lower the fixed-region cap so
  // Algorithm 1 is allowed to split them.
  PlannerOptions opts;
  opts.divider.fixed_region_size = 4 * MiB;
  return opts;
}

CostParams calibrated_params() {
  CostParams p = make_cost_params(6, 2, storage::hdd_profile(),
                                  storage::pcie_ssd_profile(),
                                  1.0 / (117.0 * 1024 * 1024));
  for (storage::OpProfile* prof : {&p.hserver_read, &p.hserver_write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.55;
    prof->startup_max *= 0.55;
  }
  return p;
}

std::vector<trace::TraceRecord> two_region_trace() {
  // Region A: hot small requests (SSD-worthy); region B: cold big requests.
  std::vector<trace::TraceRecord> records;
  Bytes base = 0;
  for (int i = 0; i < 96; ++i) {
    trace::TraceRecord r;
    r.op = IoOp::kRead;
    r.offset = base;
    r.size = 128 * KiB;
    base += r.size;
    records.push_back(r);
  }
  for (int i = 0; i < 24; ++i) {
    trace::TraceRecord r;
    r.op = IoOp::kRead;
    r.offset = base;
    r.size = 2 * MiB;
    base += r.size;
    records.push_back(r);
  }
  return records;
}

TEST(Carl, EveryRegionLivesOnExactlyOneTier) {
  const auto plan =
      analyze_carl(two_region_trace(), calibrated_params(), 10 * GiB, fine_regions());
  ASSERT_FALSE(plan.regions.empty());
  for (const auto& region : plan.regions) {
    const bool ssd_only = region.stripes[0] == 0 && region.stripes[1] > 0;
    const bool hdd_only = region.stripes[1] == 0 && region.stripes[0] > 0;
    EXPECT_TRUE(ssd_only || hdd_only)
        << "region at " << region.offset << " spans both tiers";
  }
}

TEST(Carl, UnlimitedCapacityMovesBeneficialRegionsToSsd) {
  // With ample capacity every region whose SSD placement is cheaper on the
  // model goes to SServers.
  const CostParams params = calibrated_params();
  const auto plan = analyze_carl(two_region_trace(), params, 1000 * GiB, fine_regions());
  std::size_t on_ssd = 0;
  for (const auto& region : plan.regions) on_ssd += region.stripes[0] == 0;
  EXPECT_GT(on_ssd, 0u);
}

TEST(Carl, ZeroCapacityKeepsEverythingOnHdds) {
  const auto plan = analyze_carl(two_region_trace(), calibrated_params(), 0, fine_regions());
  for (const auto& region : plan.regions) {
    EXPECT_GT(region.stripes[0], 0u);
    EXPECT_EQ(region.stripes[1], 0u);
  }
}

TEST(Carl, CapacityGatesTheGreedyChoice) {
  // Budget fits only the small hot region (12 MiB extent), not the big one.
  const auto records = two_region_trace();
  const auto plan = analyze_carl(records, calibrated_params(), 16 * MiB, fine_regions());
  ASSERT_GE(plan.regions.size(), 2u);
  Bytes ssd_extent = 0;
  for (const auto& region : plan.regions) {
    if (region.stripes[0] == 0) ssd_extent += region.end - region.offset;
  }
  EXPECT_LE(ssd_extent, 16 * MiB);
}

TEST(Carl, HarlModelCostIsNeverWorse) {
  // HARL can always reproduce CARL's single-tier placements (h=0 or s=0 are
  // in its candidate grid), so its model cost is a lower bound.
  const auto records = two_region_trace();
  const CostParams params = calibrated_params();
  const auto carl = analyze_carl(records, params, 1000 * GiB, fine_regions());
  const auto harl = analyze(records, params, fine_regions());
  EXPECT_LE(harl.total_model_cost(), carl.total_model_cost() + 1e-12);
}

TEST(Carl, SchemeIntegration) {
  harness::ExperimentOptions opts;
  opts.calibration.samples_per_size = 200;
  opts.calibration.beta_samples = 200;
  workloads::IorConfig ior;
  ior.processes = 8;
  ior.file_size = 256 * MiB;
  ior.requests_per_process = 16;
  harness::Experiment exp(opts);
  const auto result =
      exp.run(harness::ior_bundle(ior), harness::LayoutScheme::carl(1 * GiB));
  EXPECT_EQ(result.label, "CARL");
  EXPECT_GT(result.total.throughput(), 0.0);
  ASSERT_TRUE(result.plan.has_value());
}

TEST(Carl, EmptyTraceThrows) {
  EXPECT_THROW(analyze_carl({}, calibrated_params(), 1 * GiB),
               std::invalid_argument);
}

}  // namespace
}  // namespace harl::core
