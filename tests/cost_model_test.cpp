// Validation of the HARL access cost model (paper Section III-D):
//  * exact sub-request geometry vs a brute-force byte walk (property sweep);
//  * the paper's Fig. 5 closed form for case (a);
//  * Eq. 3/4 expected-maximum startup;
//  * Eq. 7/8 cost structure and read/write asymmetry;
//  * equivalence of the two-tier model with the generalized multi-tier one.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.hpp"
#include "src/core/cost_memo.hpp"
#include "src/core/cost_model.hpp"
#include "src/core/tiered_cost_model.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {
namespace {

TEST(Geometry, ZeroRequestTouchesNothing) {
  const auto g = request_geometry(123, 0, {64 * KiB, 64 * KiB}, 6, 2);
  EXPECT_EQ(g, (SubreqGeometry{0, 0, 0, 0}));
}

TEST(Geometry, SmallRequestLandsOnOneServer) {
  // 4 KiB at offset 0 with 64 KiB stripes: one HServer only.
  const auto g = request_geometry(0, 4 * KiB, {64 * KiB, 64 * KiB}, 6, 2);
  EXPECT_EQ(g.m, 1u);
  EXPECT_EQ(g.n, 0u);
  EXPECT_EQ(g.s_m, 4 * KiB);
  EXPECT_EQ(g.s_n, 0u);
}

TEST(Geometry, FullPeriodTouchesEveryServerOnce) {
  const StripePair hs{64 * KiB, 256 * KiB};
  const Bytes S = 6 * hs.h + 2 * hs.s;
  const auto g = request_geometry(0, S, hs, 6, 2);
  EXPECT_EQ(g.m, 6u);
  EXPECT_EQ(g.n, 2u);
  EXPECT_EQ(g.s_m, hs.h);
  EXPECT_EQ(g.s_n, hs.s);
}

TEST(Geometry, SserverOnlyLayout) {
  // h = 0: the {0K, 64K} layout of paper Section IV-B.3.
  const auto g = request_geometry(0, 128 * KiB, {0, 64 * KiB}, 6, 2);
  EXPECT_EQ(g.m, 0u);
  EXPECT_EQ(g.n, 2u);
  EXPECT_EQ(g.s_m, 0u);
  EXPECT_EQ(g.s_n, 64 * KiB);
}

TEST(Geometry, MultiPeriodAggregatesPerServer) {
  // 2 servers, stripe 100 each, request of 3 full periods: 300 bytes/server.
  const auto g = request_geometry(0, 600, {100, 100}, 1, 1);
  EXPECT_EQ(g.s_m, 300u);
  EXPECT_EQ(g.s_n, 300u);
}

TEST(Geometry, RejectsZeroPeriod) {
  EXPECT_THROW(request_geometry(0, 10, {0, 0}, 6, 2), std::invalid_argument);
}

struct GeometryCase {
  std::size_t M;
  std::size_t N;
  Bytes h;
  Bytes s;
};

class GeometryMatchesBruteForce : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(GeometryMatchesBruteForce, OnRandomRequests) {
  const GeometryCase c = GetParam();
  Rng rng(c.M * 7919 + c.N * 104729 + c.h * 31 + c.s);
  const Bytes S = c.M * c.h + c.N * c.s;
  for (int i = 0; i < 400; ++i) {
    const Bytes offset = rng.uniform_u64(0, 20 * S);
    const Bytes size = rng.uniform_u64(1, 8 * S);
    const auto exact = request_geometry(offset, size, {c.h, c.s}, c.M, c.N);
    const auto brute =
        request_geometry_reference(offset, size, {c.h, c.s}, c.M, c.N);
    ASSERT_EQ(exact, brute) << "o=" << offset << " r=" << size << " M=" << c.M
                            << " N=" << c.N << " h=" << c.h << " s=" << c.s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeometryMatchesBruteForce,
    ::testing::Values(GeometryCase{6, 2, 64 * KiB, 64 * KiB},
                      GeometryCase{6, 2, 36 * KiB, 148 * KiB},
                      GeometryCase{6, 2, 0, 64 * KiB},
                      GeometryCase{6, 2, 64 * KiB, 0},
                      GeometryCase{2, 6, 4 * KiB, 512 * KiB},
                      GeometryCase{7, 1, 128 * KiB, 1 * MiB},
                      GeometryCase{1, 1, 3, 7},
                      GeometryCase{3, 3, 17, 23},
                      GeometryCase{16, 4, 8 * KiB, 32 * KiB}));

// --------------------------------------------------- Fig. 5 closed form ----

TEST(Fig5CaseA, SingleStripeRowIsAnUpperBound) {
  // dr = 0, dc = 0: the printed s_m = s_b over-approximates the exact r.
  const StripePair hs{64 * KiB, 64 * KiB};
  const Bytes offset = 10 * KiB;  // within HServer 0's stripe
  const Bytes size = 4 * KiB;
  const auto closed = fig5_case_a_geometry(offset, size, hs, 6, 2);
  const auto exact = request_geometry(offset, size, hs, 6, 2);
  EXPECT_EQ(closed.m, exact.m);
  EXPECT_EQ(closed.n, 0u);
  EXPECT_GE(closed.s_m, exact.s_m);  // upper bound, not exact
  EXPECT_EQ(exact.s_m, size);
}

// Rows of the printed Fig. 5 table that are *exact* (once the fragment
// typos are corrected); the remaining rows approximate s_m or m, which we
// document rather than assert (see fig5_case_a_geometry's header).
bool fig5_row_is_exact(Bytes offset, Bytes size, StripePair hs, std::size_t M) {
  const Bytes S = M * hs.h + 2 * hs.s;
  const Bytes l_b = offset % S;
  const Bytes l_e = (offset + size) % S;
  const std::int64_t dr = static_cast<std::int64_t>((offset + size) / S) -
                          static_cast<std::int64_t>(offset / S);
  const Bytes n_b = l_b / hs.h;
  const Bytes n_e = l_e / hs.h;
  const std::int64_t dc =
      static_cast<std::int64_t>(n_e) - static_cast<std::int64_t>(n_b);
  const bool end_aligned = l_e % hs.h == 0;
  if (dr == 0) return dc >= 1 && !end_aligned;      // multi-stripe same period
  if (dc == 0) return true;                          // same-column wrap
  if (n_b + 1 == M && n_e == 0) {
    return dr == 1 && !end_aligned;                  // last-col -> first-col
  }
  return dr == 1 && dc <= -1 && !end_aligned;        // backwards wrap, 1 period
}

class Fig5CaseAExactRows : public ::testing::TestWithParam<int> {};

TEST_P(Fig5CaseAExactRows, AgreesWithExactGeometryOnExactRows) {
  const std::size_t M = 6;
  const std::size_t N = 2;
  const StripePair hs{64 * KiB, 160 * KiB};
  const Bytes S = M * hs.h + N * hs.s;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  int checked = 0;
  for (int i = 0; i < 6000 && checked < 200; ++i) {
    const Bytes offset = rng.uniform_u64(0, 5 * S);
    const Bytes size = rng.uniform_u64(1, 3 * S);
    const Bytes l_b = offset % S;
    const Bytes l_e = (offset + size) % S;
    if (l_b >= M * hs.h || l_e >= M * hs.h) continue;  // not case (a)
    if (!fig5_row_is_exact(offset, size, hs, M)) continue;
    const auto closed = fig5_case_a_geometry(offset, size, hs, M, N);
    const auto exact = request_geometry(offset, size, hs, M, N);
    EXPECT_EQ(closed.s_m, exact.s_m) << "o=" << offset << " r=" << size;
    EXPECT_EQ(closed.m, exact.m) << "o=" << offset << " r=" << size;
    EXPECT_EQ(closed.s_n, exact.s_n) << "o=" << offset << " r=" << size;
    EXPECT_EQ(closed.n, exact.n) << "o=" << offset << " r=" << size;
    ++checked;
  }
  EXPECT_GE(checked, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig5CaseAExactRows, ::testing::Values(1, 2, 3));

TEST(Fig5CaseA, RejectsRequestsOutsideCaseA) {
  const StripePair hs{64 * KiB, 64 * KiB};
  // Begins on an SServer (offset in the SServer area of the period).
  EXPECT_THROW(fig5_case_a_geometry(6 * 64 * KiB, 4 * KiB, hs, 6, 2),
               std::domain_error);
  EXPECT_THROW(fig5_case_a_geometry(0, 4 * KiB, {0, 64 * KiB}, 6, 2),
               std::domain_error);
}

// ------------------------------------------------------------- startup ----

TEST(Startup, ExpectedMaxOfUniforms) {
  storage::OpProfile p{1e-3, 5e-3, 0.0};
  EXPECT_DOUBLE_EQ(startup_expected_max(p, 0), 0.0);
  EXPECT_DOUBLE_EQ(startup_expected_max(p, 1), 1e-3 + 0.5 * 4e-3);  // mean
  // k -> infinity approaches the max.
  EXPECT_NEAR(startup_expected_max(p, 1000), 5e-3, 1e-5);
  // Monotonic in k.
  for (std::size_t k = 1; k < 10; ++k) {
    EXPECT_LT(startup_expected_max(p, k), startup_expected_max(p, k + 1));
  }
}

// ------------------------------------------------------------- request ----

CostParams test_params() {
  CostParams p = make_cost_params(6, 2, storage::hdd_profile(),
                                  storage::pcie_ssd_profile(),
                                  1.0 / (117.0 * 1024 * 1024));
  return p;
}

TEST(RequestCost, DecomposesIntoThreeTerms) {
  const CostParams p = test_params();
  const auto b =
      request_cost_breakdown(p, IoOp::kRead, 0, 512 * KiB, {64 * KiB, 64 * KiB});
  EXPECT_GT(b.network, 0.0);
  EXPECT_GT(b.startup, 0.0);
  EXPECT_GT(b.transfer, 0.0);
  EXPECT_DOUBLE_EQ(b.total, b.network + b.startup + b.transfer);
  EXPECT_DOUBLE_EQ(
      request_cost(p, IoOp::kRead, 0, 512 * KiB, {64 * KiB, 64 * KiB}), b.total);
}

TEST(RequestCost, WritesCostMoreThanReadsOnSsdOnlyLayout) {
  const CostParams p = test_params();
  const StripePair ssd_only{0, 64 * KiB};
  EXPECT_GT(request_cost(p, IoOp::kWrite, 0, 128 * KiB, ssd_only),
            request_cost(p, IoOp::kRead, 0, 128 * KiB, ssd_only));
}

TEST(RequestCost, StartupTermUsesTheSlowerTier) {
  const CostParams p = test_params();
  const auto mixed = request_cost_breakdown(p, IoOp::kRead, 0,
                                            6 * 64 * KiB + 2 * 64 * KiB,
                                            {64 * KiB, 64 * KiB});
  // HServers dominate startup (their window is milliseconds vs microseconds).
  const Seconds h_startup = startup_expected_max(p.hserver_read, mixed.geometry.m);
  EXPECT_DOUBLE_EQ(mixed.startup, h_startup);
}

TEST(RequestCost, SsdOnlyAvoidsHddStartup) {
  const CostParams p = test_params();
  // Same 128 KiB request: hybrid layout pays HDD startup, SSD-only does not.
  const Seconds hybrid =
      request_cost(p, IoOp::kRead, 0, 128 * KiB, {16 * KiB, 16 * KiB});
  const Seconds ssd_only =
      request_cost(p, IoOp::kRead, 0, 128 * KiB, {0, 64 * KiB});
  EXPECT_LT(ssd_only, hybrid);
}

TEST(RequestCost, NetworkTermScalesWithMaxSubrequest) {
  CostParams p = test_params();
  p.net_latency = 0.0;
  p.net_hops = 1;
  const auto b1 =
      request_cost_breakdown(p, IoOp::kRead, 0, 512 * KiB, {32 * KiB, 160 * KiB});
  EXPECT_DOUBLE_EQ(
      b1.network,
      p.t * static_cast<double>(std::max(b1.geometry.s_m, b1.geometry.s_n)));
  // Two hops double the term.
  p.net_hops = 2;
  const auto b2 =
      request_cost_breakdown(p, IoOp::kRead, 0, 512 * KiB, {32 * KiB, 160 * KiB});
  EXPECT_DOUBLE_EQ(b2.network, 2.0 * b1.network);
}

TEST(RequestCost, BiggerSserverStripeShiftsLoadOffHdds) {
  // Calibrated parameters (see harness::calibrate): startup is fitted from
  // a sequential single stream (small), while beta is the *effective* unit
  // time of request-sized random accesses — an HDD's per-access positioning
  // folds into the rate, ~25 MB/s effective vs ~90 MB/s media.  Under those
  // parameters the paper's optimized read layout {32K, 160K} beats the
  // default equal-stripe layout for 512 KiB requests (Fig. 7).
  CostParams p = test_params();
  for (storage::OpProfile* prof : {&p.hserver_read, &p.hserver_write}) {
    const Seconds mean_startup = prof->startup_mean();
    prof->per_byte += mean_startup / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.55;
    prof->startup_max *= 0.55;
  }
  const Seconds equal =
      request_cost(p, IoOp::kRead, 0, 512 * KiB, {64 * KiB, 64 * KiB});
  const Seconds optimized =
      request_cost(p, IoOp::kRead, 0, 512 * KiB, {32 * KiB, 160 * KiB});
  EXPECT_LT(optimized, equal);
}

TEST(RequestCost, PerStripeOverheadChargesStripeUnits) {
  CostParams p = test_params();
  p.per_stripe_overhead = 1e-3;
  CostParams base = p;
  base.per_stripe_overhead = 0.0;

  // One full period: each server holds exactly one stripe unit.
  const StripePair hs{64 * KiB, 64 * KiB};
  const Bytes S = 8 * 64 * KiB;
  EXPECT_NEAR(request_cost(p, IoOp::kRead, 0, S, hs) -
                  request_cost(base, IoOp::kRead, 0, S, hs),
              1e-3, 1e-12);
  // Four periods: the largest per-server extent merges 4 stripe units.
  EXPECT_NEAR(request_cost(p, IoOp::kRead, 0, 4 * S, hs) -
                  request_cost(base, IoOp::kRead, 0, 4 * S, hs),
              4e-3, 1e-12);
}

TEST(RequestCost, PerStripeOverheadPenalizesTinyStripes) {
  CostParams p = test_params();
  p.per_stripe_overhead = 50e-6;
  // Same byte distribution per server (4K and 64K stripes at a 1:1 tier
  // ratio aggregate identically over whole periods), but the 4K layout
  // merges 16x more stripe units.
  const Seconds tiny =
      request_cost(p, IoOp::kRead, 0, 1 * MiB, {4 * KiB, 4 * KiB});
  const Seconds coarse =
      request_cost(p, IoOp::kRead, 0, 1 * MiB, {64 * KiB, 64 * KiB});
  EXPECT_GT(tiny, coarse);
}

// ------------------------------------------------------------ multi-tier ----

TEST(TieredModel, TwoTierSpecialCaseMatchesDedicatedModel) {
  const CostParams p2 = test_params();
  core::TieredCostParams pk;
  pk.t = p2.t;
  pk.net_latency = p2.net_latency;
  pk.net_hops = p2.net_hops;
  core::TierSpec h;
  h.count = 6;
  h.profile = storage::hdd_profile();
  core::TierSpec s;
  s.count = 2;
  s.profile = storage::pcie_ssd_profile();
  pk.tiers = {h, s};

  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Bytes offset = rng.uniform_u64(0, 64 * MiB);
    const Bytes size = rng.uniform_u64(1, 4 * MiB);
    const StripePair hs{(rng.uniform_u64(0, 16)) * 4 * KiB,
                        (rng.uniform_u64(1, 64)) * 4 * KiB};
    const std::vector<Bytes> stripes = {hs.h, hs.s};
    for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
      const Seconds dedicated = request_cost(p2, op, offset, size, hs);
      const Seconds generic = tiered_request_cost(pk, op, offset, size, stripes);
      ASSERT_NEAR(dedicated, generic, 1e-15);
    }
  }
}

TEST(TieredModel, ThreeTierGeometryCountsEveryTier) {
  const std::vector<std::size_t> counts = {2, 2, 2};
  const std::vector<Bytes> stripes = {4 * KiB, 8 * KiB, 16 * KiB};
  const Bytes S = 2 * 4 * KiB + 2 * 8 * KiB + 2 * 16 * KiB;
  const auto geo = tiered_geometry(0, S, counts, stripes);
  ASSERT_EQ(geo.size(), 3u);
  EXPECT_EQ(geo[0].touched, 2u);
  EXPECT_EQ(geo[0].max_bytes, 4 * KiB);
  EXPECT_EQ(geo[1].touched, 2u);
  EXPECT_EQ(geo[1].max_bytes, 8 * KiB);
  EXPECT_EQ(geo[2].touched, 2u);
  EXPECT_EQ(geo[2].max_bytes, 16 * KiB);
}

TEST(TieredModel, SkippedTierHasNoFootprint) {
  const std::vector<std::size_t> counts = {2, 2};
  const std::vector<Bytes> stripes = {0, 64 * KiB};
  const auto geo = tiered_geometry(0, 256 * KiB, counts, stripes);
  EXPECT_EQ(geo[0].touched, 0u);
  EXPECT_EQ(geo[1].touched, 2u);
}

TEST(TieredModel, ValidatesInputs) {
  core::TieredCostParams pk;
  pk.tiers.resize(2);
  pk.tiers[0].count = 1;
  pk.tiers[1].count = 1;
  const std::vector<Bytes> wrong = {4 * KiB};
  EXPECT_THROW(tiered_request_cost(pk, IoOp::kRead, 0, 1, wrong),
               std::invalid_argument);
  const std::vector<std::size_t> counts = {1};
  const std::vector<Bytes> stripes = {0};
  EXPECT_THROW(tiered_geometry(0, 1, counts, stripes), std::invalid_argument);
}

TEST(CostMemo, CountsHitsAndMissesPerClass) {
  CostMemo memo;
  memo.reset(16);
  int computes = 0;
  const auto compute = [&](Bytes) { ++computes; return 1.5; };
  EXPECT_EQ(memo.cost(IoOp::kRead, 64 * KiB, 0, compute), 1.5);
  EXPECT_EQ(memo.cost(IoOp::kRead, 64 * KiB, 0, compute), 1.5);
  EXPECT_EQ(memo.cost(IoOp::kRead, 64 * KiB, 0, compute), 1.5);
  // Different op, size, or residue each open a fresh class.
  memo.cost(IoOp::kWrite, 64 * KiB, 0, compute);
  memo.cost(IoOp::kRead, 128 * KiB, 0, compute);
  memo.cost(IoOp::kRead, 64 * KiB, 4 * KiB, compute);
  EXPECT_EQ(computes, 4);
  EXPECT_EQ(memo.misses(), 4u);
  EXPECT_EQ(memo.hits(), 2u);
}

TEST(CostMemo, ResetLogicallyEvictsEveryClass) {
  // reset() is the memo's eviction: the generation bump must make every
  // prior class invisible without a memset, so a stale cost can never leak
  // into the next candidate.
  CostMemo memo;
  memo.reset(8);
  EXPECT_EQ(memo.cost(IoOp::kRead, 64 * KiB, 0, [](Bytes) { return 1.0; }),
            1.0);
  memo.reset(8);
  EXPECT_EQ(memo.cost(IoOp::kRead, 64 * KiB, 0, [](Bytes) { return 2.0; }),
            2.0);
  EXPECT_EQ(memo.misses(), 2u);
  EXPECT_EQ(memo.hits(), 0u);
}

TEST(CostMemo, MemberContextKeysNeverCoalesce) {
  // Two candidates with the same striping period but different member-device
  // prefixes pass distinct context hashes: the same (op, size, residue)
  // class must recompute under the new context — a cross-context hit would
  // price the fast-members candidate with the slow-members cost.
  CostMemo memo;
  const std::uint64_t context_full = 0x1234'5678'9abc'def0ULL;
  const std::uint64_t context_fast2 = 0x0fed'cba9'8765'4321ULL;
  memo.reset(8, context_full);
  EXPECT_EQ(memo.cost(IoOp::kRead, 256 * KiB, 0, [](Bytes) { return 3.0; }),
            3.0);
  memo.reset(8, context_fast2);
  EXPECT_EQ(memo.cost(IoOp::kRead, 256 * KiB, 0, [](Bytes) { return 4.0; }),
            4.0);
  // Back to the first context: still a fresh candidate (reset cleared it),
  // so the value is recomputed, not resurrected.
  memo.reset(8, context_full);
  EXPECT_EQ(memo.cost(IoOp::kRead, 256 * KiB, 0, [](Bytes) { return 5.0; }),
            5.0);
  EXPECT_EQ(memo.misses(), 3u);
  EXPECT_EQ(memo.hits(), 0u);
}

TEST(CostMemo, MixedMemberPrefixCountersStayPerCandidate) {
  // Interleaved hit/miss traffic across two candidate contexts: the
  // counters accumulate across resets (they report whole-search totals),
  // and every hit must come from the candidate's own generation.
  CostMemo memo;
  int computes = 0;
  const auto compute = [&](Bytes) { ++computes; return 7.0; };
  memo.reset(8, /*context=*/1);
  for (int i = 0; i < 3; ++i) memo.cost(IoOp::kRead, 64 * KiB, 0, compute);
  memo.reset(8, /*context=*/2);
  for (int i = 0; i < 5; ++i) memo.cost(IoOp::kRead, 64 * KiB, 0, compute);
  EXPECT_EQ(computes, 2);   // one per candidate
  EXPECT_EQ(memo.misses(), 2u);
  EXPECT_EQ(memo.hits(), 6u);  // 2 + 4 within the owning candidates
}

}  // namespace
}  // namespace harl::core
