// Tests for the MPI-IO-like middleware: R2F, MPI world, program runner
// (independent I/O, barriers, two-phase collective I/O), trace capture, and
// the HARL driver.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "src/middleware/harl_driver.hpp"
#include "src/middleware/mpi_world.hpp"
#include "src/middleware/r2f.hpp"
#include "src/middleware/runner.hpp"
#include "src/pfs/cluster.hpp"
#include "src/sim/simulator.hpp"
#include "src/workloads/ior.hpp"

namespace harl::mw {
namespace {

pfs::ClusterConfig small_config() {
  pfs::ClusterConfig cfg;
  cfg.num_hservers = 2;
  cfg.num_sservers = 1;
  cfg.num_clients = 2;
  return cfg;
}

TEST(R2f, GeneratesCanonicalNames) {
  const auto map = RegionFileMap::for_file("data.out", 3);
  EXPECT_EQ(map.logical_name(), "data.out");
  EXPECT_EQ(map.region_count(), 3u);
  EXPECT_EQ(map.physical(0), "data.out.r0");
  EXPECT_EQ(map.physical(2), "data.out.r2");
}

TEST(R2f, SaveLoadRoundTrips) {
  const auto map = RegionFileMap::for_file("f", 2);
  std::stringstream ss;
  map.save(ss);
  const auto loaded = RegionFileMap::load(ss);
  EXPECT_EQ(loaded.logical_name(), "f");
  ASSERT_EQ(loaded.region_count(), 2u);
  EXPECT_EQ(loaded.physical(1), "f.r1");
}

TEST(R2f, ValidatesInputs) {
  EXPECT_THROW(RegionFileMap::for_file("", 1), std::invalid_argument);
  EXPECT_THROW(RegionFileMap::for_file("f", 0), std::invalid_argument);
  std::stringstream bad("nope\n");
  EXPECT_THROW(RegionFileMap::load(bad), std::runtime_error);
}

TEST(MpiWorld, RoundRobinRankPlacement) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 5);
  EXPECT_EQ(world.size(), 5u);
  EXPECT_EQ(world.node_of(0), 0u);
  EXPECT_EQ(world.node_of(1), 1u);
  EXPECT_EQ(world.node_of(2), 0u);  // wraps over 2 nodes
  EXPECT_EQ(&world.client_of(2), &cluster.client(0));
}

TEST(Runner, IndependentIoCompletesAndCounts) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);

  std::vector<RankProgram> programs(2);
  programs[0].push_back(IoAction::io(IoOp::kWrite, 0, 128 * KiB));
  programs[1].push_back(IoAction::io(IoOp::kRead, 1 * MiB, 64 * KiB));

  const RunResult result = runner.run(programs);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_EQ(result.bytes_written, 128 * KiB);
  EXPECT_EQ(result.bytes_read, 64 * KiB);
  EXPECT_GT(result.write_throughput(), 0.0);
}

TEST(Runner, RegistersFileAtMds) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 1);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "registered.dat", layout);
  EXPECT_TRUE(cluster.mds().has_file("registered.dat"));
  EXPECT_EQ(cluster.mds().lookups_served(), 0u);
  runner.run({RankProgram{}});
  // Opening charges one MDS lookup per compute node.
  EXPECT_EQ(cluster.mds().lookups_served(), cluster.num_clients());
}

TEST(Runner, SequentialActionsSerializePerRank) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 1);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);

  std::vector<RankProgram> one(1);
  one[0].push_back(IoAction::io(IoOp::kWrite, 0, 64 * KiB));
  const Seconds single = runner.run(one).makespan;

  std::vector<RankProgram> three(1);
  for (int i = 0; i < 3; ++i) {
    three[0].push_back(IoAction::io(IoOp::kWrite, 0, 64 * KiB));
  }
  const Seconds triple = runner.run(three).makespan;
  EXPECT_GT(triple, 2.0 * single * 0.8);  // roughly 3x, allowing variance
}

TEST(Runner, ComputeActionsAdvanceTime) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);
  std::vector<RankProgram> programs(2);
  programs[0].push_back(IoAction::compute_for(2.0));
  programs[1].push_back(IoAction::compute_for(0.5));
  const RunResult result = runner.run(programs);
  EXPECT_GE(result.makespan, 2.0);
  EXPECT_LT(result.makespan, 2.1);
}

TEST(Runner, BarrierSynchronizesRanks) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);

  // Rank 0 computes 1 s then hits a barrier; rank 1 barriers immediately and
  // then computes 1 s.  With the barrier, total >= 2 s.
  std::vector<RankProgram> programs(2);
  programs[0].push_back(IoAction::compute_for(1.0));
  programs[0].push_back(IoAction::barrier());
  programs[1].push_back(IoAction::barrier());
  programs[1].push_back(IoAction::compute_for(1.0));
  const RunResult result = runner.run(programs);
  EXPECT_GE(result.makespan, 2.0);
}

TEST(Runner, CollectiveWriteAggregatesIntoContiguousRequests) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  trace::TraceCollector collector;
  ProgramRunner runner(world, "f", layout, &collector);

  // Interleaved per-rank pieces forming one contiguous 512 KiB range.
  std::vector<RankProgram> programs(2);
  std::vector<Extent> rank0;
  std::vector<Extent> rank1;
  for (int i = 0; i < 8; ++i) {
    const Bytes off = static_cast<Bytes>(i) * 64 * KiB;
    ((i % 2 == 0) ? rank0 : rank1).push_back(Extent{off, 64 * KiB});
  }
  programs[0].push_back(IoAction::collective(IoOp::kWrite, rank0));
  programs[1].push_back(IoAction::collective(IoOp::kWrite, rank1));
  const RunResult result = runner.run(programs);
  EXPECT_EQ(result.bytes_written, 512 * KiB);

  // Two aggregators (one per node) -> two large contiguous trace records.
  ASSERT_EQ(collector.size(), 2u);
  const auto sorted = collector.sorted_by_offset();
  EXPECT_EQ(sorted[0].offset, 0u);
  EXPECT_EQ(sorted[0].size, 256 * KiB);
  EXPECT_EQ(sorted[1].offset, 256 * KiB);
  EXPECT_EQ(sorted[1].size, 256 * KiB);
  // All bytes really reached the servers.
  Bytes stored = 0;
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    stored += cluster.server(i).bytes_written();
  }
  EXPECT_EQ(stored, 512 * KiB);
}

TEST(Runner, CollectiveReadScattersBackToRanks) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);

  std::vector<RankProgram> programs(2);
  programs[0].push_back(
      IoAction::collective(IoOp::kRead, {Extent{0, 128 * KiB}}));
  programs[1].push_back(
      IoAction::collective(IoOp::kRead, {Extent{128 * KiB, 128 * KiB}}));
  const RunResult result = runner.run(programs);
  EXPECT_EQ(result.bytes_read, 256 * KiB);
  Bytes served = 0;
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    served += cluster.server(i).bytes_read();
  }
  EXPECT_EQ(served, 256 * KiB);
}

TEST(Runner, EmptyCollectiveReleasesAllRanks) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);
  std::vector<RankProgram> programs(2);
  programs[0].push_back(IoAction::collective(IoOp::kWrite, {}));
  programs[1].push_back(IoAction::collective(IoOp::kWrite, {}));
  const RunResult result = runner.run(programs);
  EXPECT_EQ(result.bytes_written, 0u);
}

TEST(Runner, MismatchedSyncPointsAreDetected) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);
  // Rank 0 has a barrier, rank 1 does not: rank 0 can never be released.
  std::vector<RankProgram> programs(2);
  programs[0].push_back(IoAction::barrier());
  EXPECT_THROW(runner.run(programs), std::logic_error);
}

TEST(Runner, MixedBarrierAndCollectiveAtSameSyncPointThrows) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);
  std::vector<RankProgram> programs(2);
  programs[0].push_back(IoAction::barrier());
  programs[1].push_back(
      IoAction::collective(IoOp::kWrite, {Extent{0, 4 * KiB}}));
  EXPECT_THROW(runner.run(programs), std::logic_error);
}

TEST(Runner, TraceCaptureMatchesIndependentRequests) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  trace::TraceCollector collector;
  ProgramRunner runner(world, "f", layout, &collector);
  std::vector<RankProgram> programs(2);
  programs[0].push_back(IoAction::io(IoOp::kWrite, 0, 64 * KiB));
  programs[1].push_back(IoAction::io(IoOp::kRead, 1 * MiB, 32 * KiB));
  runner.run(programs);
  ASSERT_EQ(collector.size(), 2u);
  for (const auto& rec : collector.records()) {
    EXPECT_LT(rec.t_start, rec.t_end);
    if (rec.op == IoOp::kWrite) {
      EXPECT_EQ(rec.offset, 0u);
      EXPECT_EQ(rec.size, 64 * KiB);
      EXPECT_EQ(rec.rank, 0u);
    } else {
      EXPECT_EQ(rec.offset, 1 * MiB);
      EXPECT_EQ(rec.rank, 1u);
    }
  }
}

TEST(Runner, WrongProgramCountThrows) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);
  EXPECT_THROW(runner.run(std::vector<RankProgram>(3)), std::invalid_argument);
}

TEST(ProgramVolume, CountsReadsAndWrites) {
  std::vector<RankProgram> programs(2);
  programs[0].push_back(IoAction::io(IoOp::kWrite, 0, 100));
  programs[0].push_back(IoAction::barrier());
  programs[1].push_back(IoAction::collective(IoOp::kRead, {Extent{0, 30},
                                                           Extent{50, 20}}));
  const ProgramVolume v = program_volume(programs);
  EXPECT_EQ(v.write, 100u);
  EXPECT_EQ(v.read, 50u);
}

TEST(Runner, CollectiveIorBundleRunsEndToEnd) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  ProgramRunner runner(world, "f", layout);

  workloads::IorConfig ior;
  ior.processes = 2;
  ior.file_size = 8 * MiB;
  ior.request_size = 512 * KiB;
  ior.requests_per_process = 4;
  ior.collective = true;
  ior.random_offsets = false;
  const auto programs = workloads::make_ior_programs(ior);
  const RunResult result = runner.run(programs);
  EXPECT_EQ(result.bytes_written, 2u * 4u * 512 * KiB);
  EXPECT_GT(result.makespan, 0.0);
}

TEST(Runner, WorksOnThreeTierClusters) {
  sim::Simulator sim;
  pfs::ClusterConfig cfg;
  cfg.tiers = {
      pfs::TierGroup{"hdd", 2, storage::hdd_profile(), false},
      pfs::TierGroup{"sata", 1, storage::sata_ssd_profile(), true},
      pfs::TierGroup{"nvme", 1, storage::nvme_ssd_profile(), true},
  };
  cfg.num_clients = 2;
  pfs::Cluster cluster(sim, cfg);
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_tiered_layout({2, 1, 1},
                                        {16 * KiB, 64 * KiB, 128 * KiB});
  ProgramRunner runner(world, "f", layout);
  std::vector<RankProgram> programs(2);
  const Bytes period = 2 * 16 * KiB + 64 * KiB + 128 * KiB;
  programs[0].push_back(IoAction::io(IoOp::kWrite, 0, period));
  programs[1].push_back(IoAction::io(IoOp::kRead, period, period));
  const RunResult result = runner.run(programs);
  EXPECT_EQ(result.bytes_written, period);
  EXPECT_EQ(result.bytes_read, period);
  EXPECT_EQ(cluster.server(3).bytes_written(), 128 * KiB);  // nvme0
  EXPECT_EQ(cluster.server(3).bytes_read(), 128 * KiB);
}

TEST(Runner, CollectiveBufferSplitsAggregatorRanges) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 2);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  trace::TraceCollector collector;
  RunnerOptions opts;
  opts.collective.buffer_size = 128 * KiB;  // each aggregator: 256K range
  ProgramRunner runner(world, "f", layout, &collector, opts);

  std::vector<RankProgram> programs(2);
  programs[0].push_back(
      IoAction::collective(IoOp::kWrite, {Extent{0, 256 * KiB}}));
  programs[1].push_back(
      IoAction::collective(IoOp::kWrite, {Extent{256 * KiB, 256 * KiB}}));
  runner.run(programs);

  // Two aggregators x (256K / 128K buffer) = 4 PFS-level requests.
  ASSERT_EQ(collector.size(), 4u);
  for (const auto& rec : collector.records()) {
    EXPECT_EQ(rec.size, 128 * KiB);
  }
  // Rounds within one aggregator are sequential.
  const auto sorted = collector.sorted_by_offset();
  EXPECT_GE(sorted[1].t_start, sorted[0].t_end);
}

// ------------------------------------------------- noncontiguous I/O ----

std::vector<Extent> dense_extents() {
  // 8 x 32K extents with 8K holes: density 0.8.
  std::vector<Extent> out;
  for (int i = 0; i < 8; ++i) {
    out.push_back(Extent{static_cast<Bytes>(i) * 40 * KiB, 32 * KiB});
  }
  return out;
}

RunResult run_noncontig(NoncontigStrategy strategy, IoOp op,
                        std::vector<Extent> extents,
                        trace::TraceCollector* collector) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  MpiWorld world(cluster, 1);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  RunnerOptions opts;
  opts.noncontig = strategy;
  ProgramRunner runner(world, "f", layout, collector, opts);
  std::vector<RankProgram> programs(1);
  programs[0].push_back(IoAction::list_io(op, std::move(extents)));
  return runner.run(programs);
}

TEST(Noncontig, NaiveIssuesOneRequestPerExtentSequentially) {
  trace::TraceCollector collector;
  const auto result = run_noncontig(NoncontigStrategy::kNaive, IoOp::kRead,
                                    dense_extents(), &collector);
  EXPECT_EQ(result.bytes_read, 8u * 32 * KiB);
  ASSERT_EQ(collector.size(), 8u);
  // Sequential: each request starts after the previous one finished.
  const auto records = collector.records();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].t_start, records[i - 1].t_end);
  }
}

TEST(Noncontig, ListIoRunsExtentsConcurrently) {
  trace::TraceCollector naive_tc;
  trace::TraceCollector list_tc;
  const auto naive = run_noncontig(NoncontigStrategy::kNaive, IoOp::kRead,
                                   dense_extents(), &naive_tc);
  const auto list = run_noncontig(NoncontigStrategy::kListIo, IoOp::kRead,
                                  dense_extents(), &list_tc);
  EXPECT_EQ(list.bytes_read, naive.bytes_read);
  EXPECT_EQ(list_tc.size(), 8u);
  EXPECT_LT(list.makespan, naive.makespan);
}

TEST(Noncontig, DataSievingReadsTheCoveringExtent) {
  trace::TraceCollector collector;
  const auto result = run_noncontig(NoncontigStrategy::kDataSieving,
                                    IoOp::kRead, dense_extents(), &collector);
  // Application bytes are the useful ones...
  EXPECT_EQ(result.bytes_read, 8u * 32 * KiB);
  // ...but the PFS saw one covering request including the holes.
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_EQ(collector.records()[0].offset, 0u);
  EXPECT_EQ(collector.records()[0].size, 7u * 40 * KiB + 32 * KiB);
}

TEST(Noncontig, DataSievingWriteDoesReadModifyWrite) {
  trace::TraceCollector collector;
  run_noncontig(NoncontigStrategy::kDataSieving, IoOp::kWrite, dense_extents(),
                &collector);
  ASSERT_EQ(collector.size(), 2u);
  EXPECT_EQ(collector.records()[0].op, IoOp::kRead);   // fetch
  EXPECT_EQ(collector.records()[1].op, IoOp::kWrite);  // write back
  EXPECT_EQ(collector.records()[0].size, collector.records()[1].size);
}

TEST(Noncontig, SparseExtentsFallBackToListIo) {
  // 4 x 16K extents spread over 4 MiB: density ~1.6%, far below 50%.
  std::vector<Extent> sparse;
  for (int i = 0; i < 4; ++i) {
    sparse.push_back(Extent{static_cast<Bytes>(i) * MiB, 16 * KiB});
  }
  trace::TraceCollector collector;
  run_noncontig(NoncontigStrategy::kDataSieving, IoOp::kRead, sparse,
                &collector);
  EXPECT_EQ(collector.size(), 4u);  // per-extent requests, no covering read
}

TEST(Noncontig, SingleExtentListActsLikePlainIo) {
  trace::TraceCollector collector;
  const auto result = run_noncontig(NoncontigStrategy::kDataSieving,
                                    IoOp::kRead, {Extent{0, 64 * KiB}},
                                    &collector);
  EXPECT_EQ(result.bytes_read, 64 * KiB);
  EXPECT_EQ(collector.size(), 1u);
}

// ---------------------------------------------------------- HARL driver ----

TEST(HarlDriver, SaveLoadInstallRoundTrip) {
  core::Plan plan;
  plan.rst.add(0, {16 * KiB, 64 * KiB});
  plan.rst.add(128 * MiB, {36 * KiB, 144 * KiB});

  const auto dir =
      (std::filesystem::temp_directory_path() / "harl_driver_test").string();
  std::filesystem::create_directories(dir);
  HarlDriver::save(dir, "app.dat", plan);

  const auto rst = HarlDriver::load_rst(dir, "app.dat");
  ASSERT_EQ(rst.size(), 2u);
  EXPECT_EQ(rst.entry(1).pair(), (core::StripePair{36 * KiB, 144 * KiB}));

  const auto r2f = HarlDriver::load_r2f(dir, "app.dat");
  EXPECT_EQ(r2f.region_count(), 2u);
  EXPECT_EQ(r2f.physical(0), "app.dat.r0");

  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  const auto layout = HarlDriver::load_and_install(dir, "app.dat", cluster);
  EXPECT_EQ(layout->region_count(), 2u);
  EXPECT_TRUE(cluster.mds().has_file("app.dat"));
  EXPECT_TRUE(cluster.mds().has_file("app.dat.r0"));
  EXPECT_TRUE(cluster.mds().has_file("app.dat.r1"));
  std::filesystem::remove_all(dir);
}

TEST(HarlDriver, MissingArtifactsThrow) {
  EXPECT_THROW(HarlDriver::load_rst("/nonexistent", "x"), std::runtime_error);
  EXPECT_THROW(HarlDriver::load_r2f("/nonexistent", "x"), std::runtime_error);
  EXPECT_THROW(HarlDriver::load_plan("/nonexistent", "x"), std::runtime_error);
}

TEST(HarlDriver, PlanArtifactSaveLoadInstallRoundTrip) {
  core::Plan plan;
  plan.tier_counts = {2, 1};  // matches small_config()
  plan.calibration_fingerprint = 77;
  plan.rst.add(0, {16 * KiB, 64 * KiB});
  plan.rst.add(128 * MiB, {36 * KiB, 144 * KiB});

  const auto dir =
      (std::filesystem::temp_directory_path() / "harl_driver_plan_test")
          .string();
  std::filesystem::create_directories(dir);
  HarlDriver::save_plan(dir, "app.dat", plan);

  const auto artifact = HarlDriver::load_plan(dir, "app.dat");
  EXPECT_EQ(artifact.tier_counts, plan.tier_counts);
  EXPECT_EQ(artifact.calibration_fingerprint, 77u);
  ASSERT_EQ(artifact.region_files.size(), 2u);
  EXPECT_EQ(artifact.region_files[0], "app.dat.r0");

  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  const auto layout = HarlDriver::install(artifact, "app.dat", cluster);
  EXPECT_EQ(layout->region_count(), 2u);
  EXPECT_TRUE(cluster.mds().has_file("app.dat"));
  EXPECT_TRUE(cluster.mds().has_file("app.dat.r1"));
  std::filesystem::remove_all(dir);
}

TEST(HarlDriver, InstallRejectsWrongTierTable) {
  core::PlanArtifact artifact;
  artifact.tier_counts = {6, 2};  // small_config() is {2, 1}
  artifact.rst.add(0, {16 * KiB, 64 * KiB});
  sim::Simulator sim;
  pfs::Cluster cluster(sim, small_config());
  EXPECT_THROW(HarlDriver::install(artifact, "app.dat", cluster),
               std::runtime_error);
}

}  // namespace
}  // namespace harl::mw
