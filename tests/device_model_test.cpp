// Per-server device model: scaled profiles, canonical factor vectors, the
// device-aware cost kernel, member-prefix candidates, fingerprint coverage,
// cluster assembly, calibration, plan stamping, install-time validation, and
// the homogeneous byte-identity + PDES width-invariance guarantees.
//
// The load-bearing claims: (1) a homogeneous configuration — no factors, or
// all factors exactly 1.0 — takes the pre-device-model code paths bit for
// bit, and (2) every device-aware output is byte-identical across event-
// engine widths (sequential and PDES at any sim-threads).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/core/plan_artifact.hpp"
#include "src/core/planner.hpp"
#include "src/core/stripe_optimizer.hpp"
#include "src/core/tiered_cost_model.hpp"
#include "src/harness/calibration.hpp"
#include "src/harness/experiment.hpp"
#include "src/harness/scheme.hpp"
#include "src/pfs/cluster.hpp"
#include "src/storage/profiles.hpp"

namespace harl {
namespace {

using core::CostParams;
using core::TieredCostParams;
using core::TierSpec;

// ---------------------------------------------------------------- storage --

TEST(DeviceProfile, ScaledProfileByOneIsBitEqual) {
  const storage::TierProfile p = storage::pcie_ssd_profile();
  const storage::TierProfile s = storage::scaled_profile(p, 1.0);
  EXPECT_EQ(s.read.startup_min, p.read.startup_min);
  EXPECT_EQ(s.read.startup_max, p.read.startup_max);
  EXPECT_EQ(s.read.per_byte, p.read.per_byte);
  EXPECT_EQ(s.write.startup_min, p.write.startup_min);
  EXPECT_EQ(s.write.startup_max, p.write.startup_max);
  EXPECT_EQ(s.write.per_byte, p.write.per_byte);
}

TEST(DeviceProfile, ScaledProfileMultipliesEveryTimeParameter) {
  const storage::TierProfile p = storage::hdd_profile();
  const storage::TierProfile s = storage::scaled_profile(p, 2.0);
  EXPECT_DOUBLE_EQ(s.read.startup_min, 2.0 * p.read.startup_min);
  EXPECT_DOUBLE_EQ(s.read.startup_max, 2.0 * p.read.startup_max);
  EXPECT_DOUBLE_EQ(s.read.per_byte, 2.0 * p.read.per_byte);
  EXPECT_DOUBLE_EQ(s.write.per_byte, 2.0 * p.write.per_byte);
}

TEST(DeviceProfile, CanonicalizeSortsAscendingAndCollapsesAllOnes) {
  std::vector<double> f{2.0, 1.0, 1.0, 4.0};
  storage::canonicalize_device_factors(f);
  EXPECT_EQ(f, (std::vector<double>{1.0, 1.0, 2.0, 4.0}));

  std::vector<double> ones{1.0, 1.0, 1.0};
  storage::canonicalize_device_factors(ones);
  EXPECT_TRUE(ones.empty());

  std::vector<double> empty;
  storage::canonicalize_device_factors(empty);
  EXPECT_TRUE(empty.empty());
}

TEST(DeviceProfile, WorstDeviceFactorIsThePrefixMaximum) {
  const std::vector<double> f{1.0, 1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(storage::worst_device_factor(f, 0), 1.0);
  EXPECT_DOUBLE_EQ(storage::worst_device_factor(f, 1), 1.0);
  EXPECT_DOUBLE_EQ(storage::worst_device_factor(f, 2), 1.0);
  EXPECT_DOUBLE_EQ(storage::worst_device_factor(f, 3), 2.0);
  EXPECT_DOUBLE_EQ(storage::worst_device_factor(f, 4), 4.0);
  // Members beyond the vector clamp to the full tier.
  EXPECT_DOUBLE_EQ(storage::worst_device_factor(f, 9), 4.0);
  EXPECT_DOUBLE_EQ(storage::worst_device_factor({}, 3), 1.0);
}

// ----------------------------------------------------------------- kernel --

TieredCostParams two_tier_params() {
  TieredCostParams params;
  TierSpec hdd;
  hdd.count = 2;
  hdd.profile = storage::hdd_profile();
  TierSpec ssd;
  ssd.count = 4;
  ssd.profile = storage::pcie_ssd_profile();
  params.tiers = {hdd, ssd};
  params.t = 1.0 / (117.0 * 1024 * 1024);
  params.net_latency = 30e-6;
  params.net_hops = 2;
  params.per_stripe_overhead = 50e-6;
  return params;
}

TEST(DeviceKernel, AllOnesFactorsAreBitIdenticalToTheUnscaledKernel) {
  TieredCostParams params = two_tier_params();
  const std::vector<std::size_t> counts{2, 4};
  const storage::OpProfile* profiles[] = {&params.tiers[0].profile.read,
                                          &params.tiers[1].profile.read};
  const std::vector<double> ones{1.0, 1.0};
  std::vector<core::TierGeometry> scratch(2);
  for (const Bytes offset : {Bytes{0}, Bytes{96 * KiB}, Bytes{1 * MiB}}) {
    for (const Bytes size : {Bytes{4 * KiB}, Bytes{512 * KiB}, Bytes{3 * MiB}}) {
      for (const Bytes h : {Bytes{0}, Bytes{16 * KiB}, Bytes{64 * KiB}}) {
        const std::vector<Bytes> stripes{h, Bytes{128 * KiB}};
        const Seconds base = core::tiered_cost_kernel(
            counts, profiles, params.t, params.net_latency, params.net_hops,
            params.per_stripe_overhead, offset, size, stripes, scratch);
        const Seconds dev = core::tiered_cost_kernel_devices(
            counts, profiles, ones, params.t, params.net_latency,
            params.net_hops, params.per_stripe_overhead, offset, size, stripes,
            scratch);
        EXPECT_EQ(base, dev) << "offset " << offset << " size " << size
                             << " h " << h;
      }
    }
  }
}

TEST(DeviceKernel, SingleTierFactorScalesAllServerSideTerms) {
  // With the network terms zeroed, every remaining term is server-side, so
  // the device kernel must equal factor * base exactly.
  TieredCostParams params;
  TierSpec tier;
  tier.count = 1;
  tier.profile = storage::pcie_ssd_profile();
  params.tiers = {tier};
  const std::vector<std::size_t> counts{1};
  const storage::OpProfile* profiles[] = {&tier.profile.read};
  const std::vector<Bytes> stripes{64 * KiB};
  std::vector<core::TierGeometry> scratch(1);
  const Seconds base = core::tiered_cost_kernel(
      counts, profiles, /*t=*/0.0, /*net_latency=*/0.0, /*net_hops=*/1,
      /*per_stripe_overhead=*/50e-6, 0, 256 * KiB, stripes, scratch);
  for (const double f : {1.0, 1.5, 3.0}) {
    const std::vector<double> factors{f};
    const Seconds dev = core::tiered_cost_kernel_devices(
        counts, profiles, factors, 0.0, 0.0, 1, 50e-6, 0, 256 * KiB, stripes,
        scratch);
    EXPECT_DOUBLE_EQ(dev, f * base) << "factor " << f;
  }
}

TEST(DeviceKernel, NetworkTermsAreNotScaledByDeviceFactors) {
  // Pure-network parameters (zero startup and per-byte time): aging a
  // device must not change the cost at all.
  TieredCostParams params;
  TierSpec tier;
  tier.count = 2;
  tier.profile.name = "null";
  params.tiers = {tier};
  const std::vector<std::size_t> counts{2};
  const storage::OpProfile* profiles[] = {&tier.profile.read};
  const std::vector<Bytes> stripes{64 * KiB};
  std::vector<core::TierGeometry> scratch(1);
  const Seconds t = 1e-8;
  const Seconds base = core::tiered_cost_kernel(
      counts, profiles, t, 20e-6, 2, 0.0, 0, 256 * KiB, stripes, scratch);
  const std::vector<double> factors{1.0, 8.0};
  const Seconds dev = core::tiered_cost_kernel_devices(
      counts, profiles, factors, t, 20e-6, 2, 0.0, 0, 256 * KiB, stripes,
      scratch);
  EXPECT_EQ(base, dev);
}

TEST(DeviceKernel, RequestCostChargesWorstFactorOverFullMembership) {
  TieredCostParams params = two_tier_params();
  const std::vector<Bytes> stripes{64 * KiB, 128 * KiB};
  const Seconds fresh =
      core::tiered_request_cost(params, IoOp::kRead, 0, 1 * MiB, stripes);
  params.tiers[1].device_factors = {1.0, 1.0, 2.0, 2.0};
  const Seconds aged =
      core::tiered_request_cost(params, IoOp::kRead, 0, 1 * MiB, stripes);
  // Full membership touches the aged half, so the tier is charged at its
  // worst factor: strictly more expensive than the fresh fleet.
  EXPECT_GT(aged, fresh);

  // The member overload at full membership must agree with the base
  // overload bit for bit.
  const std::vector<std::size_t> full{2, 4};
  EXPECT_EQ(core::tiered_request_cost(params, IoOp::kRead, 0, 1 * MiB, stripes,
                                      full),
            aged);
}

TEST(DeviceKernel, MemberRestrictionAvoidsTheAgedStraggler) {
  // Transfer-dominated parameters: restricting tier 1 to its two fresh
  // members must beat spanning all four when the aged pair is 8x slower.
  TieredCostParams params = two_tier_params();
  params.t = 1e-10;  // negligible network
  params.net_latency = 0.0;
  params.per_stripe_overhead = 0.0;
  params.tiers[1].device_factors = {1.0, 1.0, 8.0, 8.0};
  const std::vector<Bytes> stripes{0, 128 * KiB};
  const std::vector<std::size_t> all{0, 4};
  const std::vector<std::size_t> fresh_only{0, 2};
  const Seconds wide = core::tiered_request_cost(params, IoOp::kRead, 0,
                                                 1 * MiB, stripes, all);
  const Seconds narrow = core::tiered_request_cost(params, IoOp::kRead, 0,
                                                   1 * MiB, stripes,
                                                   fresh_only);
  // Wide: ~256 KiB per server at factor 8; narrow: ~512 KiB per server at
  // factor 1.  The straggler charge dominates the halved width.
  EXPECT_LT(narrow, wide);
}

// ------------------------------------------------------------ fingerprint --

TEST(DeviceFingerprint, EmptyFactorsHashExactlyAsPreDeviceModel) {
  // params_fingerprint(CostParams) routes through the tiered fingerprint;
  // leaving the factor vectors empty must reproduce the pre-device-model
  // fingerprint — i.e. the fingerprint only depends on fields that existed
  // before the device model (regression guard for every fingerprint caller:
  // plan artifacts, cost memos, adaptive caches).
  CostParams p = core::make_cost_params(6, 2, storage::hdd_profile(),
                                        storage::pcie_ssd_profile(), 1e-8);
  const std::uint64_t before = core::params_fingerprint(p);
  p.hserver_factors = {};
  p.sserver_factors = {};
  EXPECT_EQ(core::params_fingerprint(p), before);
  EXPECT_EQ(core::params_fingerprint(core::to_tiered(p)), before);
}

TEST(DeviceFingerprint, DeviceFactorsChangeTheFingerprint) {
  CostParams p = core::make_cost_params(6, 2, storage::hdd_profile(),
                                        storage::pcie_ssd_profile(), 1e-8);
  const std::uint64_t fresh = core::params_fingerprint(p);
  p.sserver_factors = {1.0, 2.0};
  const std::uint64_t aged2 = core::params_fingerprint(p);
  EXPECT_NE(aged2, fresh);
  p.sserver_factors = {1.0, 4.0};
  const std::uint64_t aged4 = core::params_fingerprint(p);
  EXPECT_NE(aged4, fresh);
  EXPECT_NE(aged4, aged2);
  // The HServer tier's vector is hashed independently of the SServer one.
  p.sserver_factors = {};
  p.hserver_factors = {1.0, 1.0, 1.0, 1.0, 1.0, 2.0};
  EXPECT_NE(core::params_fingerprint(p), fresh);
  EXPECT_NE(core::params_fingerprint(p), aged2);
}

// -------------------------------------------------------------- optimizer --

std::vector<FileRequest> uniform_requests(Bytes size, int n) {
  std::vector<FileRequest> out;
  Bytes offset = 0;
  for (int i = 0; i < n; ++i) {
    out.push_back({IoOp::kRead, offset, size});
    offset += size;
  }
  return out;
}

TEST(DeviceOptimizer, HomogeneousSearchReportsNoMemberRestriction) {
  const TieredCostParams params = two_tier_params();
  const auto requests = uniform_requests(512 * KiB, 16);
  const auto result =
      core::optimize_region_tiered(params, requests, 512.0 * KiB);
  EXPECT_TRUE(result.members.empty());
}

TEST(DeviceOptimizer, HeterogeneousSearchCrossesMemberPrefixes) {
  TieredCostParams fresh = two_tier_params();
  TieredCostParams aged = fresh;
  aged.tiers[1].device_factors = {1.0, 1.0, 4.0, 4.0};
  const auto requests = uniform_requests(512 * KiB, 16);
  const auto fresh_result =
      core::optimize_region_tiered(fresh, requests, 512.0 * KiB);
  const auto aged_result =
      core::optimize_region_tiered(aged, requests, 512.0 * KiB);
  // Factor groups {1, 1} and {4, 4} contribute prefix choices {2, 4} for
  // tier 1, so the aged grid is strictly larger than the fresh one.
  EXPECT_GT(aged_result.candidates_evaluated,
            fresh_result.candidates_evaluated);
  // A device-aware winner always states its membership, one count per tier,
  // bounded by the tier sizes.
  ASSERT_EQ(aged_result.members.size(), 2u);
  EXPECT_LE(aged_result.members[0], 2u);
  EXPECT_LE(aged_result.members[1], 4u);
  EXPECT_TRUE(aged_result.members[1] == 2u || aged_result.members[1] == 4u)
      << aged_result.members[1];
}

TEST(DeviceOptimizer, TransferBoundRegionRestrictsToTheFreshPrefix) {
  // Make the device transfer term dominate (slow media, free network): the
  // search must stripe tier 1 over only its two fresh members.
  TieredCostParams params;
  TierSpec tier;
  tier.count = 4;
  tier.profile.name = "slow";
  tier.profile.read.per_byte = 1e-6;  // 1 MB/s media
  tier.profile.write = tier.profile.read;
  tier.device_factors = {1.0, 1.0, 8.0, 8.0};
  params.tiers = {tier};
  params.t = 1e-12;
  const auto requests = uniform_requests(512 * KiB, 8);
  const auto result =
      core::optimize_region_tiered(params, requests, 512.0 * KiB);
  ASSERT_EQ(result.members.size(), 1u);
  EXPECT_EQ(result.members[0], 2u);
}

// ---------------------------------------------------------------- cluster --

TEST(DeviceCluster, EffectiveTiersCanonicalizeFactors) {
  pfs::ClusterConfig cfg;
  cfg.num_hservers = 2;
  cfg.num_sservers = 4;
  cfg.ssd_factors = {2.0, 1.0, 1.0, 2.0};
  const auto tiers = cfg.effective_tiers();
  ASSERT_EQ(tiers.size(), 2u);
  EXPECT_TRUE(tiers[0].device_factors.empty());
  EXPECT_EQ(tiers[1].device_factors, (std::vector<double>{1.0, 1.0, 2.0, 2.0}));

  cfg.ssd_factors = {1.0, 1.0, 1.0, 1.0};
  EXPECT_TRUE(cfg.effective_tiers()[1].device_factors.empty());

  cfg.ssd_factors = {1.0, 2.0};  // size != count
  EXPECT_THROW(cfg.effective_tiers(), std::invalid_argument);
}

TEST(DeviceCluster, MinDeviceFactorSpansAllTiers) {
  pfs::ClusterConfig cfg;
  cfg.num_sservers = 2;
  EXPECT_DOUBLE_EQ(cfg.min_device_factor(), 1.0);
  cfg.ssd_factors = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(cfg.min_device_factor(), 1.0);
  cfg.ssd_factors = {0.5, 2.0};
  EXPECT_DOUBLE_EQ(cfg.min_device_factor(), 0.5);
  cfg.ssd_factors = {};
  cfg.hdd_factors = {0.75, 1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(cfg.min_device_factor(), 0.75);
}

TEST(DeviceCluster, ServersCarryTheirCanonicalSlotFactor) {
  pfs::ClusterConfig cfg;
  cfg.num_hservers = 2;
  cfg.num_sservers = 4;
  cfg.ssd_factors = {2.0, 1.0, 1.0, 2.0};  // canonicalized to {1,1,2,2}
  sim::Simulator sim;
  pfs::Cluster cluster(sim, cfg);
  ASSERT_EQ(cluster.num_servers(), 6u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(cluster.server(i).speed_factor(), 1.0) << "hserver " << i;
  }
  EXPECT_DOUBLE_EQ(cluster.server(2).speed_factor(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.server(3).speed_factor(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.server(4).speed_factor(), 2.0);
  EXPECT_DOUBLE_EQ(cluster.server(5).speed_factor(), 2.0);
}

// ------------------------------------------------------------ calibration --

TEST(DeviceCalibration, MeasuredFactorsTrackTheConfiguredAging) {
  pfs::ClusterConfig cfg;
  cfg.num_hservers = 2;
  cfg.num_sservers = 2;
  cfg.ssd_factors = {1.0, 2.0};
  harness::CalibrationOptions opts;
  opts.samples_per_size = 200;
  opts.beta_samples = 200;
  const CostParams params = harness::calibrate(cfg, opts);
  EXPECT_TRUE(params.hserver_factors.empty());
  ASSERT_EQ(params.sserver_factors.size(), 2u);
  EXPECT_NEAR(params.sserver_factors[0], 1.0, 1e-9);
  // The probe measures the aged device's effective unit time against the
  // fresh one; the simulated device scales every time parameter, so the
  // ratio lands on the configured factor.
  EXPECT_NEAR(params.sserver_factors[1], 2.0, 0.05);
}

TEST(DeviceCalibration, DeviceBlindLeavesFactorsEmpty) {
  pfs::ClusterConfig cfg;
  cfg.num_hservers = 2;
  cfg.num_sservers = 2;
  cfg.ssd_factors = {1.0, 2.0};
  harness::CalibrationOptions opts;
  opts.samples_per_size = 100;
  opts.beta_samples = 100;
  opts.device_blind = true;
  const CostParams params = harness::calibrate(cfg, opts);
  EXPECT_TRUE(params.hserver_factors.empty());
  EXPECT_TRUE(params.sserver_factors.empty());
}

// --------------------------------------------------- plan + install guard --

std::vector<trace::TraceRecord> small_trace() {
  std::vector<trace::TraceRecord> records;
  Bytes offset = 0;
  for (int i = 0; i < 32; ++i) {
    trace::TraceRecord r;
    r.op = IoOp::kRead;
    r.offset = offset;
    r.size = 512 * KiB;
    offset += r.size;
    records.push_back(r);
  }
  return records;
}

CostParams aged_params() {
  CostParams p = core::make_cost_params(2, 2, storage::hdd_profile(),
                                        storage::pcie_ssd_profile(),
                                        1.0 / (117.0 * 1024 * 1024));
  p.sserver_factors = {1.0, 2.0};
  return p;
}

TEST(DevicePlan, AnalyzeStampsTheDeviceTableIntoThePlan) {
  const core::Plan plan = core::analyze(small_trace(), aged_params());
  ASSERT_EQ(plan.device_factors.size(), 2u);
  EXPECT_TRUE(plan.device_factors[0].empty());
  EXPECT_EQ(plan.device_factors[1], (std::vector<double>{1.0, 2.0}));

  CostParams fresh = aged_params();
  fresh.sserver_factors = {};
  const core::Plan fresh_plan = core::analyze(small_trace(), fresh);
  EXPECT_TRUE(fresh_plan.device_factors.empty());
}

TEST(DevicePlan, InstallRejectsAMismatchedFleet) {
  const CostParams params = aged_params();
  const core::Plan plan = core::analyze(small_trace(), params);
  const std::string path =
      ::testing::TempDir() + "/device_model_install_test.plan";
  core::save_plan(core::PlanArtifact::from_plan(plan), path);

  pfs::ClusterConfig cluster;
  cluster.num_hservers = 2;
  cluster.num_sservers = 2;
  cluster.ssd_factors = {1.0, 2.0};
  const auto scheme = harness::LayoutScheme::from_plan_file(path);
  // Matching fleet: installs.
  EXPECT_NE(harness::build_layout(scheme, cluster, {}, params, {}), nullptr);

  // A differently aged fleet must be rejected, naming the device table.
  cluster.ssd_factors = {1.0, 4.0};
  try {
    harness::build_layout(scheme, cluster, {}, params, {});
    FAIL() << "mismatched device table was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("device"), std::string::npos)
        << e.what();
  }

  // So must a fresh fleet (the plan assumed aged devices)...
  cluster.ssd_factors = {};
  EXPECT_THROW(harness::build_layout(scheme, cluster, {}, params, {}),
               std::runtime_error);

  // ...and the converse: a homogeneous plan on an aged fleet.
  CostParams fresh = params;
  fresh.sserver_factors = {};
  const core::Plan fresh_plan = core::analyze(small_trace(), fresh);
  const std::string fresh_path =
      ::testing::TempDir() + "/device_model_install_fresh.plan";
  core::save_plan(core::PlanArtifact::from_plan(fresh_plan), fresh_path);
  const auto fresh_scheme = harness::LayoutScheme::from_plan_file(fresh_path);
  cluster.ssd_factors = {};
  EXPECT_NE(harness::build_layout(fresh_scheme, cluster, {}, fresh, {}),
            nullptr);
  cluster.ssd_factors = {1.0, 2.0};
  EXPECT_THROW(harness::build_layout(fresh_scheme, cluster, {}, fresh, {}),
               std::runtime_error);
}

// ------------------------------------------- harness golden byte-identity --

harness::WorkloadBundle small_bundle() {
  workloads::IorConfig ior;
  ior.processes = 4;
  ior.request_size = 128 * KiB;
  ior.file_size = 64 * MiB;
  ior.requests_per_process = 8;
  return harness::ior_bundle(ior);
}

harness::ExperimentOptions small_options() {
  harness::ExperimentOptions options;
  options.cluster.num_hservers = 3;
  options.cluster.num_sservers = 2;
  options.cluster.num_clients = 2;
  options.calibration.samples_per_size = 50;
  options.calibration.beta_samples = 50;
  return options;
}

/// Every numeric output of a run, formatted at full precision: equal
/// strings == bit-equal results.
std::string fingerprint(const harness::SchemeResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.label << '|' << r.layout_description << '|' << r.region_count << '|'
     << r.write.makespan << '|' << r.write.bytes << '|' << r.read.makespan
     << '|' << r.read.bytes << '|' << r.total.makespan << '|' << r.total.bytes;
  for (const Seconds io_time : r.server_io_time) os << '|' << io_time;
  if (r.plan.has_value()) {
    os << '|' << r.plan->calibration_fingerprint;
    r.plan->rst.save(os);
    for (const auto& tier : r.plan->device_factors) {
      os << '|';
      for (const double f : tier) os << f << ',';
    }
  }
  return os.str();
}

TEST(DeviceGolden, AllOnesFactorsAreByteIdenticalToNoFactors) {
  // The homogeneous guarantee end to end: configuring explicit 1.0 factors
  // for every device must reproduce the factor-free run bit for bit — same
  // plan (RST + fingerprint), same makespans, same per-server times.
  const harness::WorkloadBundle bundle = small_bundle();
  const std::vector<harness::LayoutScheme> schemes{
      harness::LayoutScheme::fixed(64 * KiB), harness::LayoutScheme::harl()};

  harness::Experiment plain(small_options());
  const auto want = plain.run_all(bundle, schemes);

  harness::ExperimentOptions ones = small_options();
  ones.cluster.hdd_factors = {1.0, 1.0, 1.0};
  ones.cluster.ssd_factors = {1.0, 1.0};
  harness::Experiment aged(ones);
  const auto got = aged.run_all(bundle, schemes);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(fingerprint(want[i]), fingerprint(got[i]))
        << "scheme " << schemes[i].label();
  }
  // And the plan stays a pre-device-model plan: no device table at all.
  ASSERT_TRUE(got[1].plan.has_value());
  EXPECT_TRUE(got[1].plan->device_factors.empty());
}

TEST(DeviceGolden, PdesWidthsAreByteIdenticalUnderDeviceSpread) {
  // Acceptance gate: with an aged fleet, sequential vs PDES at sim-threads
  // 1/2/4 must produce byte-identical outputs (the lookahead floor derives
  // from the slowest device, so window edges stay deterministic).
  const harness::WorkloadBundle bundle = small_bundle();
  const std::vector<harness::LayoutScheme> schemes{
      harness::LayoutScheme::fixed(64 * KiB), harness::LayoutScheme::harl()};

  harness::ExperimentOptions base = small_options();
  base.cluster.ssd_factors = {1.0, 2.0};
  harness::Experiment seq(base);
  const auto want = seq.run_all(bundle, schemes);

  // The aged run is genuinely heterogeneous: the HARL plan carries the
  // device table the planner saw.
  ASSERT_TRUE(want[1].plan.has_value());
  ASSERT_EQ(want[1].plan->device_factors.size(), 2u);
  EXPECT_EQ(want[1].plan->device_factors[1], (std::vector<double>{1.0, 2.0}));

  for (const unsigned width : {1u, 2u, 4u}) {
    harness::ExperimentOptions opts = base;
    opts.sim_threads = width;
    harness::Experiment exp(opts);
    const auto got = exp.run_all(bundle, schemes);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(fingerprint(want[i]), fingerprint(got[i]))
          << "sim-threads " << width << " scheme " << schemes[i].label();
      EXPECT_EQ(got[i].sim_stats.lookahead_violations, 0u)
          << "sim-threads " << width << " scheme " << schemes[i].label();
    }
  }
}

}  // namespace
}  // namespace harl
