// Tests for the simulated PFS: data servers, MDS, clients, cluster wiring,
// and space accounting / migration planning.
#include <gtest/gtest.h>

#include <numeric>

#include "src/pfs/cluster.hpp"
#include "src/pfs/space.hpp"
#include "src/sim/simulator.hpp"
#include "src/storage/hdd.hpp"

namespace harl::pfs {
namespace {

std::unique_ptr<storage::HddDevice> test_hdd(std::uint64_t seed = 1) {
  return std::make_unique<storage::HddDevice>(storage::hdd_profile(), seed);
}

TEST(DataServer, ServesSubmittedRequests) {
  sim::Simulator sim;
  DataServer server(sim, test_hdd(), "h0", false);
  bool done = false;
  server.submit(IoOp::kRead, 0, 0, 64 * KiB, 1, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(server.io_time(), 0.0);
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(server.bytes_read(), 64 * KiB);
  EXPECT_EQ(server.bytes_written(), 0u);
}

TEST(DataServer, TracksReadAndWriteBytesSeparately) {
  sim::Simulator sim;
  DataServer server(sim, test_hdd(), "h0", false);
  server.submit(IoOp::kWrite, 0, 0, 100, 1, [] {});
  server.submit(IoOp::kRead, 0, 0, 28, 1, [] {});
  sim.run();
  EXPECT_EQ(server.bytes_written(), 100u);
  EXPECT_EQ(server.bytes_read(), 28u);
}

TEST(DataServer, DistinctObjectsDoNotLookSequential) {
  // Two accesses that would be sequential within one object must not get the
  // HDD sequential discount when they belong to different objects (regions).
  sim::Simulator sim;
  auto device = std::make_unique<storage::HddDevice>(
      storage::hdd_profile(), 7, /*sequential_factor=*/0.0);
  DataServer server(sim, std::move(device), "h0", false);

  Seconds same_object_second = 0.0;
  {
    sim::Simulator sim2;
    auto dev2 = std::make_unique<storage::HddDevice>(storage::hdd_profile(), 7,
                                                     0.0);
    DataServer srv2(sim2, std::move(dev2), "h0", false);
    srv2.submit(IoOp::kRead, 0, 0, 1 * MiB, 1, [] {});
    Seconds t0 = 0.0;
    sim2.run();
    t0 = sim2.now();
    srv2.submit(IoOp::kRead, 0, 1 * MiB, 1 * MiB, 1, [] {});
    sim2.run();
    same_object_second = sim2.now() - t0;
  }

  server.submit(IoOp::kRead, 0, 0, 1 * MiB, 1, [] {});
  sim.run();
  const Seconds t0 = sim.now();
  server.submit(IoOp::kRead, 1, 1 * MiB, 1 * MiB, 1, [] {});
  sim.run();
  const Seconds cross_object_second = sim.now() - t0;

  // Same-object continuation is free of startup (factor 0); cross-object is
  // not.
  EXPECT_GT(cross_object_second, same_object_second);
}

TEST(DataServer, ResetStatsClearsCounters) {
  sim::Simulator sim;
  DataServer server(sim, test_hdd(), "h0", false);
  server.submit(IoOp::kWrite, 0, 0, 4 * KiB, 1, [] {});
  sim.run();
  server.reset_stats();
  EXPECT_EQ(server.bytes_written(), 0u);
  EXPECT_EQ(server.io_time(), 0.0);
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(DataServer, PerStripeOverheadScalesWithPieces) {
  sim::Simulator sim;
  auto dev_a = std::make_unique<storage::HddDevice>(storage::hdd_profile(), 9);
  auto dev_b = std::make_unique<storage::HddDevice>(storage::hdd_profile(), 9);
  DataServer with(sim, std::move(dev_a), "a", false, /*per_stripe=*/1e-3);
  DataServer without(sim, std::move(dev_b), "b", false, /*per_stripe=*/0.0);
  with.submit(IoOp::kRead, 0, 0, 64 * KiB, 8, [] {});
  without.submit(IoOp::kRead, 0, 0, 64 * KiB, 8, [] {});
  sim.run();
  // Same seeded device stream, so the difference is exactly 8 stripe units.
  EXPECT_NEAR(with.io_time() - without.io_time(), 8e-3, 1e-12);
}

TEST(Mds, RegisterLookupRemove) {
  sim::Simulator sim;
  MetadataServer mds(sim, 1e-3);
  auto layout = make_fixed_layout(8, 64 * KiB);
  mds.register_file("f", layout);
  EXPECT_TRUE(mds.has_file("f"));
  EXPECT_EQ(mds.layout_of("f"), layout);

  std::shared_ptr<const Layout> got;
  mds.lookup("f", [&](std::shared_ptr<const Layout> l) { got = l; });
  sim.run();
  EXPECT_EQ(got, layout);
  EXPECT_EQ(sim.now(), 1e-3);  // lookup cost charged
  EXPECT_EQ(mds.lookups_served(), 1u);

  mds.remove_file("f");
  EXPECT_FALSE(mds.has_file("f"));
  EXPECT_EQ(mds.layout_of("f"), nullptr);
}

TEST(Mds, UnknownFileLooksUpNull) {
  sim::Simulator sim;
  MetadataServer mds(sim, 1e-3);
  bool called = false;
  mds.lookup("ghost", [&](std::shared_ptr<const Layout> l) {
    called = true;
    EXPECT_EQ(l, nullptr);
  });
  sim.run();
  EXPECT_TRUE(called);
}

ClusterConfig small_cluster_config() {
  ClusterConfig cfg;
  cfg.num_hservers = 2;
  cfg.num_sservers = 1;
  cfg.num_clients = 2;
  return cfg;
}

TEST(Cluster, SsdGcSlowsSustainedWrites) {
  auto run_writes = [](storage::SsdDevice::GcModel gc) {
    sim::Simulator sim;
    ClusterConfig cfg = small_cluster_config();
    cfg.ssd_gc = gc;
    Cluster cluster(sim, cfg);
    auto layout = make_two_tier_layout(2, 0, 1, 256 * KiB);  // SSD only
    for (int i = 0; i < 64; ++i) {
      cluster.client(0).io(*layout, IoOp::kWrite,
                           static_cast<Bytes>(i) * 256 * KiB, 256 * KiB, [] {});
    }
    sim.run();
    // Device busy time isolates the GC stalls from NIC-bound makespan.
    return cluster.server(2).io_time();
  };
  const Seconds clean = run_writes({});
  const Seconds gc = run_writes({4 * MiB, 5e-3});  // stall every 4 MiB written
  // 16 MiB written -> 4 stalls of 5 ms on the single SServer.
  EXPECT_NEAR(gc - clean, 4 * 5e-3, 1e-9);
}

TEST(Cluster, WiresServersAndClients) {
  sim::Simulator sim;
  Cluster cluster(sim, small_cluster_config());
  EXPECT_EQ(cluster.num_servers(), 3u);
  EXPECT_EQ(cluster.num_hservers(), 2u);
  EXPECT_EQ(cluster.num_sservers(), 1u);
  EXPECT_EQ(cluster.num_clients(), 2u);
  EXPECT_FALSE(cluster.server(0).is_ssd());
  EXPECT_FALSE(cluster.server(1).is_ssd());
  EXPECT_TRUE(cluster.server(2).is_ssd());
  EXPECT_EQ(cluster.server(0).name(), "hserver0");
  EXPECT_EQ(cluster.server(2).name(), "sserver0");
}

TEST(Cluster, RejectsEmptyConfigs) {
  sim::Simulator sim;
  ClusterConfig none;
  none.num_hservers = 0;
  none.num_sservers = 0;
  EXPECT_THROW(Cluster(sim, none), std::invalid_argument);
  ClusterConfig no_clients = small_cluster_config();
  no_clients.num_clients = 0;
  EXPECT_THROW(Cluster(sim, no_clients), std::invalid_argument);
}

TEST(Client, ReadCompletesAfterDiskAndNetwork) {
  sim::Simulator sim;
  Cluster cluster(sim, small_cluster_config());
  auto layout = make_fixed_layout(cluster.num_servers(), 64 * KiB);
  bool done = false;
  cluster.client(0).io(*layout, IoOp::kRead, 0, 192 * KiB, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  // All three servers served one sub-request each.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.server(i).requests_served(), 1u);
    EXPECT_EQ(cluster.server(i).bytes_read(), 64 * KiB);
  }
  // Data crossed the client NIC.
  EXPECT_GT(cluster.network().client_link(0).busy_time(), 0.0);
}

TEST(Client, WritePushesThroughClientLinkFirst) {
  sim::Simulator sim;
  Cluster cluster(sim, small_cluster_config());
  auto layout = make_fixed_layout(cluster.num_servers(), 64 * KiB);
  bool done = false;
  cluster.client(1).io(*layout, IoOp::kWrite, 0, 64 * KiB, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster.server(0).bytes_written(), 64 * KiB);
  EXPECT_GT(cluster.network().client_link(1).busy_time(), 0.0);
  EXPECT_EQ(cluster.network().client_link(0).busy_time(), 0.0);
}

TEST(Client, ZeroByteRequestCompletes) {
  sim::Simulator sim;
  Cluster cluster(sim, small_cluster_config());
  auto layout = make_fixed_layout(cluster.num_servers(), 64 * KiB);
  bool done = false;
  cluster.client(0).io(*layout, IoOp::kRead, 123, 0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster.server(0).requests_served(), 0u);
}

TEST(Client, SsdServerFinishesFasterThanHdd) {
  sim::Simulator sim;
  Cluster cluster(sim, small_cluster_config());
  auto layout = make_fixed_layout(cluster.num_servers(), 256 * KiB);
  cluster.client(0).io(*layout, IoOp::kRead, 0, 768 * KiB, [] {});
  sim.run();
  // Same bytes everywhere, but the SSD server spent less device time.
  EXPECT_LT(cluster.server(2).io_time(), cluster.server(0).io_time());
  EXPECT_LT(cluster.server(2).io_time(), cluster.server(1).io_time());
}

TEST(Cluster, ServerIoTimeIncludesNic) {
  sim::Simulator sim;
  Cluster cluster(sim, small_cluster_config());
  auto layout = make_fixed_layout(cluster.num_servers(), 64 * KiB);
  cluster.client(0).io(*layout, IoOp::kRead, 0, 192 * KiB, [] {});
  sim.run();
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_GT(cluster.server_io_time(i), cluster.server(i).io_time());
  }
  cluster.reset_stats();
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(cluster.server_io_time(i), 0.0);
  }
}

TEST(Cluster, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    sim::Simulator sim;
    Cluster cluster(sim, small_cluster_config());
    auto layout = make_fixed_layout(cluster.num_servers(), 64 * KiB);
    for (int i = 0; i < 20; ++i) {
      cluster.client(0).io(*layout, IoOp::kWrite,
                           static_cast<Bytes>(i) * 192 * KiB, 192 * KiB, [] {});
    }
    sim.run();
    return sim.now();
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------- space ----

TEST(Space, FootprintOfFixedLayoutIsEven) {
  auto layout = make_fixed_layout(4, 64 * KiB);
  const SpaceUsage u = storage_footprint(*layout, 1 * MiB);
  EXPECT_EQ(u.total, 1 * MiB);
  for (Bytes b : u.per_server) EXPECT_EQ(b, 256 * KiB);
}

TEST(Space, FootprintOfVariedLayoutIsProportional) {
  auto layout = make_two_tier_layout(6, 32 * KiB, 2, 160 * KiB);
  const Bytes period = 6 * 32 * KiB + 2 * 160 * KiB;  // 512K
  const SpaceUsage u = storage_footprint(*layout, 10 * period);
  EXPECT_EQ(u.hserver_bytes(6), 10 * 6 * 32 * KiB);
  EXPECT_EQ(u.sserver_bytes(6), 10 * 2 * 160 * KiB);
}

TEST(Space, MigrationNoopWhenCapacitySuffices) {
  RegionLayout layout(2, 2,
                      {RegionSpec{0, 64 * KiB, 256 * KiB},
                       RegionSpec{64 * MiB, 32 * KiB, 128 * KiB}});
  const auto plan = plan_migration(layout, 128 * MiB, 1 * GiB, {});
  EXPECT_TRUE(plan.demoted.empty());
  EXPECT_EQ(plan.sserver_bytes_after, plan.sserver_bytes_before);
}

TEST(Space, MigrationDemotesColdestRegionsFirst) {
  RegionLayout layout(2, 2,
                      {RegionSpec{0, 64 * KiB, 256 * KiB},
                       RegionSpec{64 * MiB, 64 * KiB, 256 * KiB}});
  // Region 0 is hot, region 1 cold.
  std::vector<RegionHeat> heat = {{0, 10 * GiB}, {1, 1 * MiB}};
  // Force demotion of exactly one region: capacity just above half the SSD
  // footprint.
  const SpaceUsage usage = storage_footprint(layout, 128 * MiB);
  const Bytes ssd_total = usage.sserver_bytes(2);
  const auto plan =
      plan_migration(layout, 128 * MiB, ssd_total / 2 + 1024, heat);
  ASSERT_EQ(plan.demoted.size(), 1u);
  EXPECT_EQ(plan.demoted[0], 1u);  // the cold one
  EXPECT_EQ(plan.regions[1].s(), 0u);
  EXPECT_GE(plan.regions[1].h(), 256 * KiB);  // inherits the bigger stripe
  EXPECT_LE(plan.sserver_bytes_after, ssd_total / 2 + 1024);
  // The hot region keeps its SServer striping.
  EXPECT_EQ(plan.regions[0].s(), 256 * KiB);
}

TEST(Space, MigrationRequiresHServers) {
  RegionLayout layout(0, 2, {RegionSpec{0, 0, 64 * KiB}});
  EXPECT_THROW(plan_migration(layout, 1 * MiB, 0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace harl::pfs
