// Tests for the on-line re-layout advisor (paper future work #2).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/online_advisor.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {
namespace {

CostParams calibrated_params() {
  CostParams p = make_cost_params(6, 2, storage::hdd_profile(),
                                  storage::pcie_ssd_profile(),
                                  1.0 / (117.0 * 1024 * 1024));
  for (storage::OpProfile* prof : {&p.hserver_read, &p.hserver_write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.55;
    prof->startup_max *= 0.55;
  }
  return p;
}

trace::TraceRecord request(Bytes offset, Bytes size, IoOp op = IoOp::kRead) {
  trace::TraceRecord r;
  r.op = op;
  r.offset = offset;
  r.size = size;
  return r;
}

/// An RST optimized for 512 KiB requests (paper-shaped hybrid pair).
RegionStripeTable tuned_for_large_requests() {
  RegionStripeTable rst;
  rst.add(0, {28 * KiB, 172 * KiB});
  return rst;
}

TEST(OnlineAdvisor, SteadyWorkloadProducesNoRecommendation) {
  OnlineAdvisor::Options opts;
  opts.window = 64;
  OnlineAdvisor advisor(calibrated_params(), tuned_for_large_requests(), opts);

  // The workload the RST was built for: no window should clear min_gain.
  for (int w = 0; w < 3; ++w) {
    for (std::size_t i = 0; i < 64; ++i) {
      const auto rec =
          advisor.observe(request((i % 512) * 512 * KiB, 512 * KiB));
      EXPECT_FALSE(rec.has_value());
    }
  }
  EXPECT_EQ(advisor.windows_analyzed(), 3u);
  EXPECT_EQ(advisor.recommendations_made(), 0u);
}

TEST(OnlineAdvisor, WorkloadShiftTriggersRecommendation) {
  OnlineAdvisor::Options opts;
  opts.window = 64;
  OnlineAdvisor advisor(calibrated_params(), tuned_for_large_requests(), opts);

  // The workload shifts to small requests, for which the optimal layout is
  // SServer-only (paper Fig. 9) — the hybrid RST is now badly wrong.
  std::optional<OnlineAdvisor::Recommendation> rec;
  for (std::size_t i = 0; i < 64 && !rec; ++i) {
    rec = advisor.observe(request((i % 1024) * 128 * KiB, 128 * KiB));
  }
  ASSERT_TRUE(rec.has_value());
  EXPECT_GT(rec->gain, 0.10);
  EXPECT_LT(rec->optimized_cost, rec->current_cost);
  EXPECT_EQ(rec->window_requests, 64u);
  EXPECT_GT(rec->affected_extent, 0u);
  // The proposed layout is SServer-only for the small-request window.
  EXPECT_EQ(rec->rst.lookup(0).stripes[0], 0u);
}

TEST(OnlineAdvisor, AdoptInstallsTheNewTable) {
  OnlineAdvisor::Options opts;
  opts.window = 64;
  OnlineAdvisor advisor(calibrated_params(), tuned_for_large_requests(), opts);

  std::optional<OnlineAdvisor::Recommendation> rec;
  for (std::size_t i = 0; i < 64; ++i) {
    rec = advisor.observe(request((i % 1024) * 128 * KiB, 128 * KiB));
  }
  ASSERT_TRUE(rec.has_value());
  advisor.adopt(*rec);
  EXPECT_EQ(advisor.current().lookup(0).stripes, rec->rst.lookup(0).stripes);

  // After adoption the same workload no longer triggers recommendations.
  std::optional<OnlineAdvisor::Recommendation> again;
  for (std::size_t i = 0; i < 64; ++i) {
    again = advisor.observe(request((i % 1024) * 128 * KiB, 128 * KiB));
    EXPECT_FALSE(again.has_value());
  }
}

TEST(OnlineAdvisor, MinGainGatesRecommendations) {
  OnlineAdvisor::Options strict;
  strict.window = 64;
  strict.min_gain = 0.95;  // practically unreachable
  OnlineAdvisor advisor(calibrated_params(), tuned_for_large_requests(), strict);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_FALSE(
        advisor.observe(request((i % 1024) * 128 * KiB, 128 * KiB)).has_value());
  }
  EXPECT_EQ(advisor.windows_analyzed(), 1u);
  EXPECT_EQ(advisor.recommendations_made(), 0u);
}

TEST(OnlineAdvisor, CostUnderUsesGoverningRegions) {
  const CostParams params = calibrated_params();
  RegionStripeTable rst;
  rst.add(0, {0, 64 * KiB});
  rst.add(1 * GiB, {28 * KiB, 172 * KiB});
  std::vector<trace::TraceRecord> records = {
      request(0, 128 * KiB),
      request(2 * GiB, 512 * KiB),
  };
  const Seconds total = OnlineAdvisor::cost_under(params, rst, records);
  const Seconds expect =
      request_cost(params, IoOp::kRead, 0, 128 * KiB, {0, 64 * KiB}) +
      request_cost(params, IoOp::kRead, 2 * GiB, 512 * KiB,
                   {28 * KiB, 172 * KiB});
  EXPECT_DOUBLE_EQ(total, expect);
}

TEST(OnlineAdvisor, BoundarySpanningRequestCostedByStartingRegion) {
  // Pin the convention: a request crossing a region boundary is costed with
  // the stripes of the region its *first byte* falls in, for its full size.
  const CostParams params = calibrated_params();
  RegionStripeTable rst;
  rst.add(0, {0, 64 * KiB});
  rst.add(1 * GiB, {28 * KiB, 172 * KiB});

  // 96 KiB before the boundary, 32 KiB after: starting region is region 0.
  const Bytes offset = 1 * GiB - 96 * KiB;
  const std::vector<trace::TraceRecord> records = {
      request(offset, 128 * KiB, IoOp::kWrite)};
  const Seconds got = OnlineAdvisor::cost_under(params, rst, records);
  EXPECT_DOUBLE_EQ(got, request_cost(params, IoOp::kWrite, offset, 128 * KiB,
                                     {0, 64 * KiB}));
  // And NOT the crossed region's stripes.
  EXPECT_NE(got, request_cost(params, IoOp::kWrite, offset, 128 * KiB,
                              {28 * KiB, 172 * KiB}));
}

TEST(OnlineAdvisor, BoundarySpanApproximationErrorIsBounded) {
  // The starting-region convention is an approximation.  The reference is
  // the cost of splitting the request at the boundary and costing each piece
  // under its own region, serialized — an upper bound, since each piece pays
  // its own startup.  The approximation drops the boundary-crossing
  // overhead, so it must never exceed that split cost; and it must stay
  // within 4x below it (the split's double-paid startups on small pieces
  // account for the gap), keeping a window's gain estimate the right order
  // of magnitude even when every request straddled a boundary.
  const CostParams params = calibrated_params();
  RegionStripeTable rst;
  rst.add(0, {0, 64 * KiB});
  rst.add(1 * GiB, {28 * KiB, 172 * KiB});

  for (const Bytes head : {96 * KiB, 80 * KiB, 72 * KiB}) {
    const Bytes size = 128 * KiB;  // head in region 0, size-head in region 1
    const Bytes offset = 1 * GiB - head;
    const std::vector<trace::TraceRecord> records = {
        request(offset, size, IoOp::kRead)};
    const Seconds approx = OnlineAdvisor::cost_under(params, rst, records);
    const Seconds split =
        request_cost(params, IoOp::kRead, offset, head, {0, 64 * KiB}) +
        request_cost(params, IoOp::kRead, 1 * GiB, size - head,
                     {28 * KiB, 172 * KiB});
    ASSERT_GT(split, 0.0);
    EXPECT_LE(approx, split)
        << "head " << head << ": approx " << approx << " vs split " << split;
    EXPECT_GE(approx, split / 4.0)
        << "head " << head << ": approx " << approx << " vs split " << split;
  }
}

TEST(OnlineAdvisor, ValidatesConstruction) {
  const CostParams params = calibrated_params();
  EXPECT_THROW(OnlineAdvisor(params, RegionStripeTable{}, {}),
               std::invalid_argument);
  OnlineAdvisor::Options bad_window;
  bad_window.window = 0;
  EXPECT_THROW(OnlineAdvisor(params, tuned_for_large_requests(), bad_window),
               std::invalid_argument);
  OnlineAdvisor::Options bad_gain;
  bad_gain.min_gain = 1.5;
  EXPECT_THROW(OnlineAdvisor(params, tuned_for_large_requests(), bad_gain),
               std::invalid_argument);
}

TEST(OnlineAdvisor, AffectedExtentTracksChangedSpanOnly) {
  // Current table has two regions; the shift only invalidates the first.
  const CostParams params = calibrated_params();
  RegionStripeTable rst;
  rst.add(0, {28 * KiB, 172 * KiB});
  rst.add(1 * GiB, {0, 64 * KiB});

  OnlineAdvisor::Options opts;
  opts.window = 64;
  OnlineAdvisor advisor(params, rst, opts);

  // Small requests confined to the first region.
  std::optional<OnlineAdvisor::Recommendation> rec;
  for (std::size_t i = 0; i < 64; ++i) {
    rec = advisor.observe(request((i % 512) * 128 * KiB, 128 * KiB));
  }
  ASSERT_TRUE(rec.has_value());
  // Affected extent is bounded by the window's touched span (< 512 * 128K),
  // far below the 1 GiB second region.
  EXPECT_LE(rec->affected_extent, 512 * 128 * KiB);
}

}  // namespace
}  // namespace harl::core
