// Determinism regression tests for the region-parallel planning pipeline.
//
// The contract under test: analyze()/analyze_carl()/analyze_segment_level()
// with a thread pool and the coalescing scorer produce Plans that are
// *bit-identical* — stripe for stripe, cost double for cost double — to the
// serial, brute-force-scored baseline.  Parallelism only reorders who
// computes each region, never what is computed; coalescing memoizes cost
// values but accumulates them in the original request order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/planner.hpp"
#include "src/core/stripe_optimizer.hpp"
#include "src/storage/profiles.hpp"
#include "src/trace/record.hpp"
#include "src/workloads/btio.hpp"
#include "src/workloads/ior.hpp"

namespace harl::core {
namespace {

CostParams calibrated_params() {
  CostParams p = make_cost_params(6, 2, storage::hdd_profile(),
                                  storage::pcie_ssd_profile(),
                                  1.0 / (117.0 * 1024 * 1024));
  for (storage::OpProfile* prof : {&p.hserver_read, &p.hserver_write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.55;
    prof->startup_max *= 0.55;
  }
  return p;
}

/// Flattens rank programs into trace records the way the Tracing Phase
/// would see them (one record per extent, issue order preserved via
/// t_start), without paying for a simulated execution.
void flatten(const std::vector<mw::RankProgram>& programs,
             std::vector<trace::TraceRecord>* out) {
  for (std::size_t rank = 0; rank < programs.size(); ++rank) {
    for (const auto& action : programs[rank]) {
      if (action.kind == mw::IoAction::Kind::kCompute ||
          action.kind == mw::IoAction::Kind::kBarrier) {
        continue;
      }
      for (const auto& extent : action.extents) {
        trace::TraceRecord rec;
        rec.rank = static_cast<std::uint32_t>(rank);
        rec.op = action.op;
        rec.offset = extent.offset;
        rec.size = extent.size;
        rec.t_start = static_cast<Seconds>(out->size());
        out->push_back(rec);
      }
    }
  }
}

std::vector<trace::TraceRecord> ior_trace() {
  workloads::IorConfig cfg;
  cfg.processes = 8;
  cfg.file_size = 256 * MiB;
  cfg.request_size = 512 * KiB;
  cfg.requests_per_process = 24;
  std::vector<trace::TraceRecord> records;
  cfg.op = IoOp::kWrite;
  flatten(workloads::make_ior_programs(cfg), &records);
  cfg.op = IoOp::kRead;
  flatten(workloads::make_ior_programs(cfg), &records);
  return records;
}

std::vector<trace::TraceRecord> btio_trace() {
  workloads::BtioConfig cfg;
  cfg.processes = 4;
  cfg.grid = 24;
  cfg.max_dumps = 2;
  std::vector<trace::TraceRecord> records;
  flatten(workloads::make_btio_programs(cfg), &records);
  return records;
}

std::vector<trace::TraceRecord> random_trace(std::uint64_t seed) {
  // Randomized phase structure: contiguous runs whose request sizes differ
  // phase to phase, so Algorithm 1 has real boundaries to find, with random
  // ops/ranks and a shuffled record order (exercising the sort path).
  Rng rng(seed);
  std::vector<trace::TraceRecord> records;
  Bytes base = 0;
  for (std::size_t phase = 0; phase < 4; ++phase) {
    const Bytes size = (64 * KiB) << rng.uniform_u64(0, 5);  // 64 KiB .. 1 MiB
    for (std::size_t i = 0; i < 96; ++i) {
      trace::TraceRecord rec;
      rec.rank = static_cast<std::uint32_t>(rng.uniform_u64(0, 16));
      rec.op = rng.uniform_u64(0, 2) ? IoOp::kRead : IoOp::kWrite;
      rec.offset = base;
      rec.size = size;
      base += size;
      records.push_back(rec);
    }
  }
  // Deterministic shuffle so input order differs from ByOffset order
  // (uniform_u64 bounds are inclusive).
  for (std::size_t i = records.size(); i > 1; --i) {
    std::swap(records[i - 1], records[rng.uniform_u64(0, i - 1)]);
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].t_start = static_cast<Seconds>(i);
  }
  return records;
}

void expect_identical(const Plan& got, const Plan& want) {
  ASSERT_EQ(got.regions.size(), want.regions.size());
  for (std::size_t i = 0; i < want.regions.size(); ++i) {
    SCOPED_TRACE("region " + std::to_string(i));
    EXPECT_EQ(got.regions[i].offset, want.regions[i].offset);
    EXPECT_EQ(got.regions[i].end, want.regions[i].end);
    EXPECT_EQ(got.regions[i].stripes, want.regions[i].stripes);
    // Bit-identical, not approximately equal: coalescing accumulates the
    // same doubles in the same order as brute force.
    EXPECT_EQ(got.regions[i].model_cost, want.regions[i].model_cost);
    EXPECT_EQ(got.regions[i].candidates_evaluated,
              want.regions[i].candidates_evaluated);
  }
  ASSERT_EQ(got.rst.size(), want.rst.size());
  for (std::size_t i = 0; i < want.rst.size(); ++i) {
    EXPECT_EQ(got.rst.entry(i).offset, want.rst.entry(i).offset);
    EXPECT_EQ(got.rst.entry(i).stripes, want.rst.entry(i).stripes);
  }
  EXPECT_EQ(got.total_model_cost(), want.total_model_cost());
}

/// Serial, brute-force-scored baseline vs pooled, coalescing configuration.
struct OptionPair {
  PlannerOptions baseline;
  PlannerOptions fast;
};

OptionPair option_pair(ThreadPool* pool) {
  OptionPair pair;
  pair.baseline.optimizer.coalesce = false;
  pair.fast.pool = pool;
  // Also hand the optimizer the pool: the planner must ignore it while
  // regions are the parallel grain, so this must not perturb the plan.
  pair.fast.optimizer.pool = pool;
  // Small regions so the synthetic traces divide and the parallel path has
  // real multi-region work (applied to both sides identically).
  pair.baseline.divider.fixed_region_size = 8 * MiB;
  pair.fast.divider.fixed_region_size = 8 * MiB;
  return pair;
}

TEST(PlannerParallel, IorTraceMatchesSerialBruteForce) {
  const auto records = ior_trace();
  const CostParams params = calibrated_params();
  ThreadPool pool(4);
  const OptionPair opts = option_pair(&pool);
  const Plan want = analyze(records, params, opts.baseline);
  const Plan got = analyze(records, params, opts.fast);
  expect_identical(got, want);
  EXPECT_GT(got.total_cost_evals_saved(), 0u);
  EXPECT_EQ(got.total_cost_evals() + got.total_cost_evals_saved(),
            want.total_cost_evals());
}

TEST(PlannerParallel, BtioTraceMatchesSerialBruteForce) {
  const auto records = btio_trace();
  const CostParams params = calibrated_params();
  ThreadPool pool(4);
  const OptionPair opts = option_pair(&pool);
  expect_identical(analyze(records, params, opts.fast),
                   analyze(records, params, opts.baseline));
}

TEST(PlannerParallel, RandomTracesMatchSerialBruteForce) {
  const CostParams params = calibrated_params();
  ThreadPool pool(4);
  const OptionPair opts = option_pair(&pool);
  bool saw_multi_region = false;
  for (std::uint64_t seed : {3u, 5u, 23u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto records = random_trace(seed);
    const Plan want = analyze(records, params, opts.baseline);
    saw_multi_region = saw_multi_region || want.regions.size() > 1;
    expect_identical(analyze(records, params, opts.fast), want);
  }
  // The regression only bites if the parallel path really fans out.
  EXPECT_TRUE(saw_multi_region);
}

TEST(PlannerParallel, PresortedInputMatchesUnsorted) {
  // ensure_sorted() uses a ByOffset-ordered input in place; the plan must
  // not depend on which path ran.
  const CostParams params = calibrated_params();
  auto records = random_trace(7);
  const Plan from_unsorted = analyze(records, params);
  std::sort(records.begin(), records.end(), trace::ByOffset{});
  expect_identical(analyze(records, params), from_unsorted);
}

TEST(PlannerParallel, CarlMatchesSerialBruteForce) {
  // CARL's parallel grain is (region, tier): two single-tier searches per
  // region, all concurrent, reassembled by index.
  const auto records = random_trace(11);
  const CostParams params = calibrated_params();
  ThreadPool pool(4);
  const OptionPair opts = option_pair(&pool);
  expect_identical(analyze_carl(records, params, 1 * GiB, opts.fast),
                   analyze_carl(records, params, 1 * GiB, opts.baseline));
}

TEST(PlannerParallel, SegmentLevelMatchesSerialBruteForce) {
  const auto records = random_trace(13);
  const CostParams params = calibrated_params();
  ThreadPool pool(4);
  const OptionPair opts = option_pair(&pool);
  expect_identical(analyze_segment_level(records, params, opts.fast),
                   analyze_segment_level(records, params, opts.baseline));
}

TEST(PlannerParallel, RepeatedParallelRunsAreStable) {
  // Flush out schedule-dependent nondeterminism: many parallel runs over
  // the same trace must agree exactly.
  const auto records = random_trace(29);
  const CostParams params = calibrated_params();
  ThreadPool pool(4);
  PlannerOptions opts;
  opts.pool = &pool;
  opts.divider.fixed_region_size = 8 * MiB;
  const Plan first = analyze(records, params, opts);
  for (int run = 0; run < 4; ++run) {
    expect_identical(analyze(records, params, opts), first);
  }
}

// ---------------------------------------------------------------------------
// Pinned golden plans, captured from the dedicated two-tier planning path
// before the optimizer and planner generalized to tier vectors.  The generic
// k=2 path must reproduce every field double for double: offsets, stripes,
// model costs (as exact bit patterns, written as hex floats), and grid
// sizes.  A failure here means the refactored path is no longer the same
// computation.
// ---------------------------------------------------------------------------

struct GoldenRegion {
  Bytes offset;
  Bytes end;
  Bytes h;
  Bytes s;
  Seconds model_cost;
  std::size_t candidates;
};

PlannerOptions golden_options() {
  PlannerOptions opts;
  opts.divider.fixed_region_size = 8 * MiB;
  return opts;
}

void expect_matches_golden(const Plan& plan,
                           const std::vector<GoldenRegion>& want,
                           Seconds total_cost) {
  ASSERT_EQ(plan.regions.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("region " + std::to_string(i));
    EXPECT_EQ(plan.regions[i].offset, want[i].offset);
    EXPECT_EQ(plan.regions[i].end, want[i].end);
    ASSERT_EQ(plan.regions[i].stripes.size(), 2u);
    EXPECT_EQ(plan.regions[i].stripes[0], want[i].h);
    EXPECT_EQ(plan.regions[i].stripes[1], want[i].s);
    EXPECT_EQ(plan.regions[i].model_cost, want[i].model_cost);
    EXPECT_EQ(plan.regions[i].candidates_evaluated, want[i].candidates);
  }
  // None of the golden traces produce mergeable neighbours, so the RST
  // mirrors the regions row for row.
  ASSERT_EQ(plan.rst.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("rst row " + std::to_string(i));
    EXPECT_EQ(plan.rst.entry(i).offset, want[i].offset);
    EXPECT_EQ(plan.rst.entry(i).stripes,
              (std::vector<Bytes>{want[i].h, want[i].s}));
  }
  EXPECT_EQ(plan.total_model_cost(), total_cost);
  EXPECT_EQ(plan.tier_counts, (std::vector<std::size_t>{6, 2}));
}

TEST(PlannerGolden, IorTraceMatchesPreRefactorPlan) {
  const Plan plan = analyze(ior_trace(), calibrated_params(), golden_options());
  expect_matches_golden(
      plan,
      {{0ull, 267386880ull, 16384ull, 212992ull, 0x1.139c79ccdafacp+0, 8257u}},
      0x1.139c79ccdafacp+0);
}

TEST(PlannerGolden, BtioTraceMatchesPreRefactorPlan) {
  const Plan plan =
      analyze(btio_trace(), calibrated_params(), golden_options());
  expect_matches_golden(
      plan,
      {{0ull, 1105920ull, 0ull, 4096ull, 0x1.fc444dbcf21b5p-1, 2u}},
      0x1.fc444dbcf21b5p-1);
}

TEST(PlannerGolden, RandomTraceMatchesPreRefactorPlan) {
  const Plan plan =
      analyze(random_trace(3), calibrated_params(), golden_options());
  expect_matches_golden(
      plan,
      {
          {0ull, 25690112ull, 0ull, 131072ull, 0x1.2c1af41a46132p-3, 2146u},
          {25690112ull, 75563008ull, 8192ull, 106496ull, 0x1.0f54af4d1613ep-2,
           8129u},
          {75563008ull, 82837504ull, 0ull, 32768ull, 0x1.a6949d45364bfp-5,
           191u},
          {82837504ull, 182452224ull, 32768ull, 425984ull, 0x1.f25c741fe52dcp-2,
           32897u},
      },
      0x1.e6489891628a6p-1);
}

TEST(PlannerGolden, ParallelCoalescingPathMatchesGoldenToo) {
  // The same goldens through the pooled, coalescing configuration: the
  // region-parallel engine must not perturb a single bit either.
  ThreadPool pool(4);
  PlannerOptions opts = golden_options();
  opts.pool = &pool;
  opts.optimizer.pool = &pool;
  const Plan plan = analyze(ior_trace(), calibrated_params(), opts);
  expect_matches_golden(
      plan,
      {{0ull, 267386880ull, 16384ull, 212992ull, 0x1.139c79ccdafacp+0, 8257u}},
      0x1.139c79ccdafacp+0);
}

}  // namespace
}  // namespace harl::core
