// Tests for the substrate extensions: fixed-chunk region division (the
// paper's rejected strawman), trace replay, and fault injection.
#include <gtest/gtest.h>

#include "src/core/planner.hpp"
#include "src/middleware/mpi_world.hpp"
#include "src/middleware/runner.hpp"
#include "src/pfs/cluster.hpp"
#include "src/storage/faulty.hpp"
#include "src/storage/hdd.hpp"
#include "src/workloads/random_workload.hpp"
#include "src/workloads/replay.hpp"

namespace harl {
namespace {

trace::TraceRecord request(Bytes offset, Bytes size, std::uint32_t rank = 0,
                           IoOp op = IoOp::kWrite, Seconds t0 = 0.0) {
  trace::TraceRecord r;
  r.rank = rank;
  r.pid = rank;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = t0;
  r.t_end = t0 + 1e-3;
  return r;
}

// ----------------------------------------------------- fixed division ----

TEST(FixedDivision, SplitsAtChunkBoundaries) {
  std::vector<trace::TraceRecord> records;
  for (int i = 0; i < 32; ++i) {
    records.push_back(request(static_cast<Bytes>(i) * 4 * MiB, 4 * MiB));
  }
  const auto division = core::divide_regions_fixed(records, 64 * MiB);
  ASSERT_EQ(division.regions.size(), 2u);
  EXPECT_EQ(division.regions[0].offset, 0u);
  EXPECT_EQ(division.regions[0].end, 64 * MiB);
  EXPECT_EQ(division.regions[1].offset, 64 * MiB);
  EXPECT_EQ(division.regions[1].end, 128 * MiB);
  EXPECT_EQ(division.regions[0].request_count(), 16u);
  EXPECT_EQ(division.regions[1].request_count(), 16u);
}

TEST(FixedDivision, EmptyChunksMergeForward) {
  std::vector<trace::TraceRecord> records = {
      request(0, 1 * MiB),
      request(512 * MiB, 1 * MiB),  // chunks 1..7 empty
  };
  const auto division = core::divide_regions_fixed(records, 64 * MiB);
  ASSERT_EQ(division.regions.size(), 2u);
  EXPECT_EQ(division.regions[0].end, 512 * MiB);  // extends over empty chunks
  EXPECT_EQ(division.regions[1].offset, 512 * MiB);
}

TEST(FixedDivision, IsBlindToWorkloadChangesInsideAChunk) {
  // A size change in the middle of one chunk: Algorithm 1 splits, the fixed
  // division cannot.
  std::vector<trace::TraceRecord> records;
  Bytes base = 0;
  for (int i = 0; i < 16; ++i) {
    records.push_back(request(base, 64 * KiB));
    base += 64 * KiB;
  }
  for (int i = 0; i < 16; ++i) {
    records.push_back(request(base, 2 * MiB));
    base += 2 * MiB;
  }
  const auto fixed = core::divide_regions_fixed(records, 256 * MiB);
  EXPECT_EQ(fixed.regions.size(), 1u);

  core::DividerOptions opts;
  opts.fixed_region_size = 4 * MiB;  // extent is small; keep the cap loose
  const auto adaptive = core::divide_regions(records, opts);
  EXPECT_GE(adaptive.regions.size(), 2u);
}

TEST(FixedDivision, PlannerIntegration) {
  std::vector<trace::TraceRecord> records;
  Bytes base = 0;
  for (int i = 0; i < 64; ++i) {
    records.push_back(request(base, 512 * KiB));
    base += 512 * KiB;
  }
  core::CostParams params = core::make_cost_params(
      6, 2, storage::hdd_profile(), storage::pcie_ssd_profile(),
      1.0 / (117.0 * 1024 * 1024));
  const auto plan = core::analyze_fixed_regions(records, params, 16 * MiB);
  EXPECT_GE(plan.regions.size(), 2u);
  EXPECT_FALSE(plan.rst.empty());
}

TEST(FixedDivision, ValidatesInputs) {
  std::vector<trace::TraceRecord> records = {request(0, 1)};
  EXPECT_THROW(core::divide_regions_fixed(records, 0), std::invalid_argument);
  std::vector<trace::TraceRecord> unsorted = {request(100, 1), request(0, 1)};
  EXPECT_THROW(core::divide_regions_fixed(unsorted, 64 * MiB),
               std::invalid_argument);
  EXPECT_TRUE(core::divide_regions_fixed({}, 64 * MiB).regions.empty());
}

// ------------------------------------------------------------- replay ----

TEST(Replay, GroupsByRankInTemporalOrder) {
  std::vector<trace::TraceRecord> records = {
      request(0, 4 * KiB, 1, IoOp::kRead, 0.3),
      request(100 * KiB, 4 * KiB, 0, IoOp::kWrite, 0.1),
      request(200 * KiB, 4 * KiB, 1, IoOp::kRead, 0.2),
  };
  const auto programs = workloads::make_replay_programs(records);
  ASSERT_EQ(programs.size(), 2u);
  ASSERT_EQ(programs[0].size(), 1u);
  ASSERT_EQ(programs[1].size(), 2u);
  // Rank 1's requests replay in t_start order: 0.2 then 0.3.
  EXPECT_EQ(programs[1][0].extents[0].offset, 200 * KiB);
  EXPECT_EQ(programs[1][1].extents[0].offset, 0u);
}

TEST(Replay, PreserveGapsInsertsComputeActions) {
  std::vector<trace::TraceRecord> records = {
      request(0, 4 * KiB, 0, IoOp::kWrite, 0.0),      // ends at 1 ms
      request(8 * KiB, 4 * KiB, 0, IoOp::kWrite, 0.5)  // 499 ms think time
  };
  workloads::ReplayOptions opts;
  opts.preserve_gaps = true;
  const auto programs = workloads::make_replay_programs(records, opts);
  ASSERT_EQ(programs[0].size(), 3u);
  EXPECT_EQ(programs[0][1].kind, mw::IoAction::Kind::kCompute);
  EXPECT_NEAR(programs[0][1].compute, 0.499, 1e-9);
}

TEST(Replay, RoundTripsThroughTheRunner) {
  // Capture a trace, replay it, and verify the same PFS-level requests.
  workloads::RandomWorkloadConfig cfg;
  cfg.requests = 60;
  cfg.ranks = 3;
  cfg.file_size = 256 * MiB;
  const auto original = workloads::make_random_trace(cfg);

  auto run_and_collect = [](const std::vector<mw::RankProgram>& programs,
                            std::size_t ranks) {
    sim::Simulator sim;
    pfs::ClusterConfig ccfg;
    ccfg.num_clients = 2;
    pfs::Cluster cluster(sim, ccfg);
    mw::MpiWorld world(cluster, ranks);
    trace::TraceCollector collector;
    mw::ProgramRunner runner(
        world, "f", pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB),
        &collector);
    runner.run(programs);
    return collector.sorted_by_offset();
  };

  const auto first =
      run_and_collect(workloads::make_replay_programs(original), cfg.ranks);
  const auto second = run_and_collect(
      workloads::make_replay_programs(first), cfg.ranks);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].offset, second[i].offset);
    EXPECT_EQ(first[i].size, second[i].size);
    EXPECT_EQ(first[i].op, second[i].op);
  }
}

TEST(Replay, ValidatesInputs) {
  EXPECT_THROW(workloads::make_replay_programs({}), std::invalid_argument);
  std::vector<trace::TraceRecord> records = {request(0, 1, /*rank=*/5)};
  workloads::ReplayOptions opts;
  opts.ranks = 2;  // rank 5 does not fit
  EXPECT_THROW(workloads::make_replay_programs(records, opts),
               std::invalid_argument);
}

// ------------------------------------------------------------- faults ----

TEST(FaultyDevice, SlowdownScalesServiceTimes) {
  auto make = [](double slowdown) {
    return storage::FaultyDevice(
        std::make_unique<storage::HddDevice>(storage::hdd_profile(), 3),
        storage::FaultyDevice::Faults{slowdown, 0, 0.0});
  };
  auto healthy = make(1.0);
  auto degraded = make(3.0);
  // Same seed: identical underlying service streams.
  for (int i = 0; i < 50; ++i) {
    const Bytes offset = static_cast<Bytes>(i) * 10 * MiB;
    const Seconds a = healthy.service_time(IoOp::kRead, offset, 64 * KiB);
    const Seconds b = degraded.service_time(IoOp::kRead, offset, 64 * KiB);
    EXPECT_NEAR(b, 3.0 * a, 1e-12);
  }
}

TEST(FaultyDevice, HiccupsFireEveryNth) {
  storage::FaultyDevice dev(
      std::make_unique<storage::HddDevice>(storage::hdd_profile(), 4),
      storage::FaultyDevice::Faults{1.0, 5, 0.5});
  for (int i = 0; i < 20; ++i) dev.service_time(IoOp::kRead, 0, 4 * KiB);
  EXPECT_EQ(dev.accesses(), 20u);
  EXPECT_EQ(dev.hiccups(), 4u);
  dev.reset();
  EXPECT_EQ(dev.accesses(), 0u);
}

TEST(FaultyDevice, ValidatesConfiguration) {
  auto inner = std::make_unique<storage::HddDevice>(storage::hdd_profile(), 5);
  EXPECT_THROW(storage::FaultyDevice(nullptr, {}), std::invalid_argument);
  EXPECT_THROW(storage::FaultyDevice(std::move(inner),
                                     storage::FaultyDevice::Faults{0.5, 0, 0}),
               std::invalid_argument);
}

TEST(FaultInjection, DegradedServerShowsInClusterStats) {
  auto run = [](double slowdown) {
    sim::Simulator sim;
    pfs::ClusterConfig cfg;
    cfg.num_hservers = 2;
    cfg.num_sservers = 1;
    cfg.num_clients = 2;
    cfg.server_faults[0] = storage::FaultyDevice::Faults{slowdown, 0, 0.0};
    pfs::Cluster cluster(sim, cfg);
    auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
    for (int i = 0; i < 32; ++i) {
      cluster.client(0).io(*layout, IoOp::kWrite,
                           static_cast<Bytes>(i) * 192 * KiB, 192 * KiB, [] {});
    }
    sim.run();
    return std::pair<Seconds, Seconds>(cluster.server(0).io_time(),
                                       cluster.server(1).io_time());
  };
  const auto healthy = run(1.0);
  const auto degraded = run(4.0);
  // Server 0 slows ~4x while its healthy peer is unchanged.
  EXPECT_NEAR(degraded.first / healthy.first, 4.0, 0.2);
  EXPECT_NEAR(degraded.second, healthy.second, healthy.second * 0.01);
}

}  // namespace
}  // namespace harl
