// Unit and integration tests for src/obs: label packing, metrics registry
// semantics (including deterministic merge), the flight recorder's spans,
// summaries and ring buffer, and — the load-bearing one — reconciliation of
// the measured T_X/T_S/T_T decomposition against the analytic
// tiered_cost_model on a deterministic single-request scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/units.hpp"
#include "src/core/tiered_cost_model.hpp"
#include "src/net/network.hpp"
#include "src/obs/health.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/recorder.hpp"
#include "src/obs/timeseries.hpp"
#include "src/pfs/cluster.hpp"
#include "src/pfs/layout.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"
#include "src/storage/profiles.hpp"

namespace harl {
namespace {

// ------------------------------------------------------------- label set ----

TEST(LabelSet, DefaultsToAllAbsent) {
  const obs::LabelSet l;
  EXPECT_EQ(l.server_value(), obs::LabelSet::kNone);
  EXPECT_EQ(l.region_value(), obs::LabelSet::kNoneRegion);
  EXPECT_EQ(l.client_value(), obs::LabelSet::kNone);
  EXPECT_FALSE(l.has_op());
}

TEST(LabelSet, PacksFieldsIndependently) {
  const obs::LabelSet l =
      obs::LabelSet{}.server(3).tier(1).region(42).client(7).op(IoOp::kWrite);
  EXPECT_EQ(l.server_value(), 3u);
  EXPECT_EQ(l.tier_value(), 1u);
  EXPECT_EQ(l.region_value(), 42u);
  EXPECT_EQ(l.client_value(), 7u);
  EXPECT_TRUE(l.has_op());
  EXPECT_EQ(l.op_value(), IoOp::kWrite);
  // A partial set leaves the other fields absent.
  const obs::LabelSet partial = obs::LabelSet{}.tier(0).op(IoOp::kRead);
  EXPECT_EQ(partial.server_value(), obs::LabelSet::kNone);
  EXPECT_EQ(partial.tier_value(), 0u);
  EXPECT_EQ(partial.op_value(), IoOp::kRead);
}

TEST(LabelSet, BitsRoundTrip) {
  const obs::LabelSet l = obs::LabelSet{}.server(9).region(100).op(IoOp::kRead);
  EXPECT_EQ(obs::LabelSet::from_bits(l.bits()), l);
}

// ------------------------------------------------------- metrics registry ----

TEST(MetricsRegistry, CountersGaugesAndHistograms) {
  obs::MetricsRegistry reg;
  const auto c = reg.family("bytes", obs::MetricsRegistry::Kind::kCounter);
  const auto g = reg.family("depth", obs::MetricsRegistry::Kind::kGauge);
  const auto h = reg.family("lat", obs::MetricsRegistry::Kind::kHistogram);
  const obs::LabelSet s0 = obs::LabelSet{}.server(0);
  const obs::LabelSet s1 = obs::LabelSet{}.server(1);

  reg.add(c, s0, 100.0);
  reg.add(c, s0, 20.0);
  reg.add(c, s1, 7.0);
  reg.set_max(g, s0, 3.0);
  reg.set_max(g, s0, 2.0);  // lower sample must not win
  reg.observe(h, s0, 1e-3);
  reg.observe(h, s0, 4e-3);

  EXPECT_DOUBLE_EQ(reg.value("bytes", s0), 120.0);
  EXPECT_DOUBLE_EQ(reg.value("bytes", s1), 7.0);
  EXPECT_DOUBLE_EQ(reg.value("depth", s0), 3.0);
  EXPECT_DOUBLE_EQ(reg.value("missing", s0), 0.0);
  const LogHistogram* lat = reg.histogram("lat", s0);
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 2u);
  EXPECT_DOUBLE_EQ(lat->max(), 4e-3);
  EXPECT_EQ(reg.histogram("lat", s1), nullptr);
}

TEST(MetricsRegistry, FamilyKindMismatchThrows) {
  obs::MetricsRegistry reg;
  reg.family("x", obs::MetricsRegistry::Kind::kCounter);
  EXPECT_THROW(reg.family("x", obs::MetricsRegistry::Kind::kHistogram),
               std::invalid_argument);
}

std::string registry_json(const obs::MetricsRegistry& reg) {
  std::ostringstream out;
  reg.write_json(out);
  return out.str();
}

TEST(MetricsRegistry, MergeIsExactAndOrderIndependent) {
  // Shards as the parallel harness produces them: same families, label sets
  // inserted in different orders, merged in different orders — the JSON dump
  // (the canonical serialized form) must be byte-identical either way.
  auto make_shard = [](std::uint32_t first, std::uint32_t second, double w) {
    obs::MetricsRegistry reg;
    const auto c = reg.family("bytes", obs::MetricsRegistry::Kind::kCounter);
    const auto h = reg.family("lat", obs::MetricsRegistry::Kind::kHistogram);
    reg.add(c, obs::LabelSet{}.server(first), w);
    reg.add(c, obs::LabelSet{}.server(second), 2.0 * w);
    reg.observe(h, obs::LabelSet{}.server(first), w * 1e-3);
    return reg;
  };
  const obs::MetricsRegistry a = make_shard(0, 1, 10.0);
  const obs::MetricsRegistry b = make_shard(1, 0, 5.0);

  obs::MetricsRegistry ab;
  ab.merge(a);
  ab.merge(b);
  obs::MetricsRegistry ba;
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(registry_json(ab), registry_json(ba));
  EXPECT_DOUBLE_EQ(ab.value("bytes", obs::LabelSet{}.server(0)), 20.0);
  EXPECT_DOUBLE_EQ(ab.value("bytes", obs::LabelSet{}.server(1)), 25.0);
}

TEST(MetricsRegistry, SketchFamiliesObserveAndMergeLikeCounters) {
  // kSketch is a first-class family kind: observe() feeds the sketch, the
  // sketch() accessor exposes it, merge is exact/order-independent, and the
  // JSON dump carries the p50/p95/p99/p999 summary.
  auto make_shard = [](std::uint32_t first, std::uint32_t second, double w) {
    obs::MetricsRegistry reg;
    const auto q = reg.family("svc", obs::MetricsRegistry::Kind::kSketch);
    reg.observe(q, obs::LabelSet{}.server(first), w * 0.25);
    reg.observe(q, obs::LabelSet{}.server(second), w * 0.5);
    return reg;
  };
  const obs::MetricsRegistry a = make_shard(0, 1, 1.0);
  const obs::MetricsRegistry b = make_shard(1, 0, 2.0);

  obs::MetricsRegistry ab;
  ab.merge(a);
  ab.merge(b);
  obs::MetricsRegistry ba;
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(registry_json(ab), registry_json(ba));

  const obs::QuantileSketch* s0 = ab.sketch("svc", obs::LabelSet{}.server(0));
  ASSERT_NE(s0, nullptr);
  EXPECT_EQ(s0->count(), 2u);
  EXPECT_DOUBLE_EQ(s0->min(), 0.25);
  EXPECT_DOUBLE_EQ(s0->max(), 1.0);
  EXPECT_EQ(ab.sketch("svc", obs::LabelSet{}.server(9)), nullptr);

  const std::string json = registry_json(ab);
  EXPECT_NE(json.find("\"type\": \"sketch\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

// ------------------------------------------------------------ time series ----

TEST(TimeSeries, RollsUpWindowsAndClipsBusyAtBoundaries) {
  obs::TimeSeries ts(obs::TimeSeries::Options{1.0, 16});
  // A job whose service straddles the w0/w1 boundary: latency lands in the
  // arrival window, busy time splits exactly across the two windows
  // (dyadic endpoints keep the clipped spans float-exact).
  ts.record_span(3, /*arrival=*/0.5, /*start=*/0.75, /*finish=*/1.25);
  ts.record_depth(3, 0.5, 2);
  ts.record_cache(100, 50, 0.25);

  EXPECT_EQ(ts.window_of(0.5), 0);
  EXPECT_EQ(ts.window_jobs(0, 3), 1u);
  EXPECT_DOUBLE_EQ(ts.window_latency_mean(0, 3), 0.75);
  const auto stats = ts.window_stats(0);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].server, 3u);

  std::ostringstream os;
  ts.write_json(os, 0);
  const std::string json = os.str();
  // busy 0.25 s in window 0 and 0.25 s in window 1.
  EXPECT_NE(json.find("\"busy_s\": [0.25, 0.25]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"hit_bytes\": [100, 0]"), std::string::npos);
  EXPECT_NE(json.find("\"depth_max\": [2, 0]"), std::string::npos);
}

TEST(TimeSeries, BoundedRingDropsOldestWindowsLoudly) {
  obs::TimeSeries ts(obs::TimeSeries::Options{1.0, 4});
  for (int w = 0; w < 10; ++w) {
    ts.record_span(0, w + 0.1, w + 0.2, w + 0.4);
  }
  EXPECT_EQ(ts.window_count(), 4u);
  EXPECT_EQ(ts.dropped_windows(), 6u);
  EXPECT_EQ(ts.last_window(), 9);
  // Dropped windows read as idle, and late data for them is discarded.
  EXPECT_EQ(ts.window_jobs(0, 0), 0u);
  ts.record_span(0, 0.5, 0.6, 0.7);
  EXPECT_EQ(ts.window_jobs(0, 0), 0u);
}

// ---------------------------------------------------------- health monitor ----

/// Drives one synthetic job per (window, server) directly through the Sink
/// surface: server `slow`'s latency is `slow_lat`, everyone else's 0.1 s.
void feed_window(obs::HealthMonitor& hm,
                 const std::vector<std::uint32_t>& tracks, std::int64_t w,
                 int slow, double slow_lat) {
  for (std::size_t s = 0; s < tracks.size(); ++s) {
    const double arrival = static_cast<double>(w) + 0.05;
    const double lat = static_cast<int>(s) == slow ? slow_lat : 0.1;
    hm.resource_event(tracks[s], arrival, arrival, arrival + lat);
  }
}

TEST(HealthMonitor, FlagAndRecoverHysteresis) {
  obs::HealthMonitor::Options opt;
  opt.interval = 1.0;
  opt.flag_threshold = 2.0;
  opt.recover_threshold = 1.25;
  opt.flag_windows = 2;
  opt.recover_windows = 2;
  obs::HealthMonitor hm(opt, nullptr);
  std::vector<std::uint32_t> tracks;
  for (std::uint32_t s = 0; s < 3; ++s) {
    tracks.push_back(hm.register_server(s, 0, "srv", false));
  }

  // Windows 0-1 healthy; 2-3 server 0 slow (score 10 >= threshold).  One
  // slow window must NOT flag (hysteresis); the second must.
  feed_window(hm, tracks, 0, -1, 0.0);
  feed_window(hm, tracks, 1, -1, 0.0);
  feed_window(hm, tracks, 2, 0, 1.0);
  feed_window(hm, tracks, 3, 0, 1.0);
  feed_window(hm, tracks, 4, 0, 0.1);  // watermark: scores windows 0-3
  EXPECT_TRUE(hm.is_flagged(0));
  EXPECT_FALSE(hm.is_flagged(1));
  EXPECT_NEAR(hm.server_score(0), 10.0, 1e-9);

  // Two healthy windows recover it — but only after BOTH have scored.
  feed_window(hm, tracks, 5, -1, 0.0);  // scores window 4: one healthy
  EXPECT_TRUE(hm.is_flagged(0));
  feed_window(hm, tracks, 6, -1, 0.0);  // scores window 5: second healthy
  EXPECT_FALSE(hm.is_flagged(0));
  hm.finalize();  // scores the trailing window 6 (idempotent afterwards)
  EXPECT_DOUBLE_EQ(hm.metrics().value("health.straggler_flagged",
                                      obs::LabelSet{}.server(0)),
                   1.0);
  EXPECT_DOUBLE_EQ(hm.metrics().value("health.recovered",
                                      obs::LabelSet{}.server(0)),
                   1.0);

  std::ostringstream os;
  hm.write_json(os, 0);
  EXPECT_NE(os.str().find("\"flag_count\": 1"), std::string::npos);
}

TEST(HealthMonitor, DeadBandResetsBothStreaks) {
  // Scores inside (recover_threshold, flag_threshold) are the hysteresis
  // dead band: a straggler that hovers at ~1.5x never accumulates enough
  // consecutive slow windows to flag.
  obs::HealthMonitor::Options opt;
  opt.interval = 1.0;
  opt.flag_threshold = 2.0;
  opt.recover_threshold = 1.25;
  opt.flag_windows = 2;
  obs::HealthMonitor hm(opt, nullptr);
  std::vector<std::uint32_t> tracks;
  for (std::uint32_t s = 0; s < 3; ++s) {
    tracks.push_back(hm.register_server(s, 0, "srv", false));
  }
  // Alternate slow (score 10) and dead-band (score 1.5) windows: the flag
  // streak resets every other window, so server 0 is never flagged.
  for (std::int64_t w = 0; w < 8; ++w) {
    feed_window(hm, tracks, w, 0, w % 2 == 0 ? 1.0 : 0.15);
  }
  hm.finalize();
  EXPECT_FALSE(hm.is_flagged(0));
  EXPECT_DOUBLE_EQ(hm.metrics().value("health.straggler_flagged",
                                      obs::LabelSet{}.server(0)),
                   0.0);
}

TEST(HealthMonitor, SloAttainmentTracksRequestsAndSubs) {
  obs::HealthMonitor::Options opt;
  opt.interval = 1.0;
  opt.slo = 0.5;
  obs::HealthMonitor hm(opt, nullptr);
  const std::uint32_t track = hm.register_server(2, 0, "srv", true);
  (void)track;

  // Request 1 (read): sub resident 0.3 s <= SLO, request latency 0.4 s.
  const std::uint32_t r1 = hm.begin_request(0, IoOp::kRead, 0, KiB, 0.0);
  const std::uint32_t s1 = hm.begin_sub(r1, 2, 0, KiB, 0.0);
  hm.sub_storage(s1, 0.0, 0.1, 0.05, 0.2);  // (0.1-0.0) + 0.2 = 0.3
  hm.sub_net_done(s1, 0.35);
  hm.end_request(r1, 0.4);
  // Request 2 (read): sub resident 0.8 s > SLO, request latency 0.9 s.
  const std::uint32_t r2 = hm.begin_request(0, IoOp::kRead, 0, KiB, 1.0);
  const std::uint32_t s2 = hm.begin_sub(r2, 2, 0, KiB, 1.0);
  hm.sub_storage(s2, 1.0, 1.6, 0.05, 0.2);  // (1.6-1.0) + 0.2 = 0.8
  hm.sub_net_done(s2, 1.85);
  hm.end_request(r2, 1.9);
  hm.finalize();

  const obs::LabelSet by_server = obs::LabelSet{}.server(2);
  const obs::LabelSet by_op = obs::LabelSet{}.op(IoOp::kRead);
  EXPECT_DOUBLE_EQ(hm.metrics().value("health.slo.subs_total", by_server),
                   2.0);
  EXPECT_DOUBLE_EQ(hm.metrics().value("health.slo.subs_met", by_server), 1.0);
  EXPECT_DOUBLE_EQ(hm.metrics().value("health.slo.requests_total", by_op),
                   2.0);
  EXPECT_DOUBLE_EQ(hm.metrics().value("health.slo.requests_met", by_op), 1.0);

  std::ostringstream os;
  hm.write_json(os, 0);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"read_total\": 2, \"read_met\": 1"),
            std::string::npos);
  EXPECT_NE(json.find("\"slo_subs_total\": 2, \"slo_subs_met\": 1"),
            std::string::npos);
}

TEST(HealthMonitor, ForwardsEverySinkCallDownstream) {
  // As a transparent forwarder in front of a Recorder, the monitor must not
  // swallow anything: the recorder sees the same spans/requests it would
  // have seen directly, plus the health instants the monitor originates.
  sim::Simulator sim;
  obs::Recorder rec;
  obs::HealthMonitor::Options opt;
  opt.interval = 1e-3;
  opt.flag_windows = 1;
  opt.min_window_jobs = 1;
  obs::HealthMonitor hm(opt, &rec);
  sim.set_observer(&hm);
  sim::FifoResource res(sim, "disk");
  res.set_obs_track(hm.register_server(0, 0, "disk", false));
  res.submit(1e-3, [] {});
  res.submit(2e-3, [] {});
  sim.run();

  const auto summaries = rec.resource_summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].jobs, 2u);
  // Both jobs were submitted at t=0, so both land in telemetry window 0.
  EXPECT_EQ(hm.timeseries().window_jobs(0, 0), 2u);
}

// -------------------------------------------------------------- timeline ----

TEST(Timeline, CoalescesInsteadOfGrowing) {
  obs::Timeline tl(1e-3, 8, /*take_max=*/false);
  // Busy the first millisecond, then jump 10 simulated seconds ahead: the
  // bucket width must double until t fits, and the recorded busy-seconds
  // must be conserved across coalescing.
  tl.add_span(0.0, 1e-3);
  tl.add_span(10.0, 10.5);
  EXPECT_LE(tl.values().size(), 8u);
  double total = 0.0;
  for (double v : tl.values()) total += v;
  EXPECT_NEAR(total, 1e-3 + 0.5, 1e-9);
  EXPECT_GE(tl.bucket_width() * 8.0, 10.5);
}

TEST(Timeline, MaxModeKeepsHighWaterMarks) {
  obs::Timeline tl(1.0, 4, /*take_max=*/true);
  tl.sample_max(0.5, 3.0);
  tl.sample_max(0.6, 2.0);  // lower sample in the same bucket must not win
  EXPECT_DOUBLE_EQ(tl.values()[0], 3.0);
}

// ----------------------------------------------------- recorder: resources ----

TEST(Recorder, FifoSpansWaitsAndSummaries) {
  sim::Simulator sim;
  obs::Recorder rec;
  sim.set_observer(&rec);
  sim::FifoResource res(sim, "disk");
  res.set_obs_track(rec.register_server(0, 0, "disk", false));

  // Two back-to-back jobs: the second queues behind the first.
  res.submit(1e-3, [] {});
  res.submit(2e-3, [] {});
  sim.run();

  const auto summaries = rec.resource_summaries();
  ASSERT_EQ(summaries.size(), 1u);
  const auto& s = summaries[0];
  EXPECT_EQ(s.kind, obs::TrackKind::kServerDisk);
  EXPECT_EQ(s.jobs, 2u);
  EXPECT_NEAR(s.busy, res.busy_time(), 1e-12);
  EXPECT_NEAR(s.queue_delay, 1e-3, 1e-12);  // job 2 waited for job 1
  EXPECT_EQ(s.depth_max, 2u);
  ASSERT_NE(s.wait, nullptr);
  ASSERT_NE(s.service, nullptr);
  EXPECT_EQ(s.service->count(), 2u);
  EXPECT_NEAR(s.service->max(), 2e-3, 1e-12);
  // One X span per job plus one wait record for the queued job (async b/e
  // pairs are stored once and expanded at export time).
  EXPECT_EQ(rec.trace_events_recorded(), 3u);
  EXPECT_NEAR(rec.last_time(), 3e-3, 1e-12);
}

TEST(Recorder, RingBufferBoundsTraceMemory) {
  obs::Recorder::Options opts;
  opts.max_trace_events = 8;
  sim::Simulator sim;
  obs::Recorder rec(opts);
  sim.set_observer(&rec);
  sim::FifoResource res(sim, "disk");
  res.set_obs_track(rec.register_server(0, 0, "disk", false));
  for (int i = 0; i < 100; ++i) res.submit(1e-4, [] {});
  sim.run();

  EXPECT_GT(rec.trace_events_recorded(), 8u);
  EXPECT_EQ(rec.trace_events_dropped(), rec.trace_events_recorded() - 8u);
  // The exported trace holds only the ring's survivors (plus metadata).
  std::ostringstream out;
  rec.write_trace_json(out);
  const std::string json = out.str();
  std::size_t spans = 0;
  for (std::size_t pos = json.find("\"ph\": \"X\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"X\"", pos + 1)) {
    ++spans;
  }
  EXPECT_LE(spans, 8u);
  EXPECT_GT(spans, 0u);
}

TEST(Recorder, TraceJsonHasChromeTraceShape) {
  sim::Simulator sim;
  obs::Recorder rec;
  sim.set_observer(&rec);
  sim::FifoResource res(sim, "disk");
  res.set_obs_track(rec.register_server(2, 1, "sserver_2", true));
  res.submit(1e-3, [] {});
  res.submit(1e-3, [] {});
  sim.run();

  std::ostringstream out;
  rec.write_trace_json(out, "harl-test");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("sserver_2"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // service span
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);  // queue wait
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
}

// ------------------------------------------- recorder: request attribution ----

/// Deterministic one-tier cluster: fixed startup window (min == max), flat
/// per-byte rates, no GC, no faults — every component of the paper's
/// decomposition is analytically known.
pfs::ClusterConfig deterministic_config() {
  storage::TierProfile det;
  det.name = "det";
  det.read = storage::OpProfile{500e-6, 500e-6, 1e-8};
  det.write = storage::OpProfile{500e-6, 500e-6, 1e-8};
  pfs::ClusterConfig cfg;
  cfg.tiers = {pfs::TierGroup{"det", 2, det, /*is_ssd=*/true}};
  cfg.num_clients = 1;
  cfg.network = net::NetworkParams{1e-9, 40e-6};
  cfg.server_per_stripe_overhead = 50e-6;
  return cfg;
}

/// The analytic cost parameters matching what the simulator actually charges
/// an uncontended request: each transfer serializes on two FIFO links, so
/// the model sees 2 hops and twice the per-message latency.
core::TieredCostParams matching_params(const pfs::ClusterConfig& cfg) {
  core::TieredCostParams params;
  for (const auto& group : cfg.tiers) {
    params.tiers.push_back(core::TierSpec{group.count, group.profile});
  }
  params.t = cfg.network.per_byte;
  params.net_latency = 2.0 * cfg.network.message_latency;
  params.net_hops = 2;
  params.per_stripe_overhead = cfg.server_per_stripe_overhead;
  return params;
}

TEST(Recorder, ReconcilesMeasuredDecompositionAgainstCostModel) {
  // Acceptance scenario: single request, idle deterministic cluster.  The
  // measured T_X/T_S/T_T (+ queue wait) must sum to the request's completion
  // time exactly, and the tiered cost model with the matching parameters
  // must predict that completion time to float round-off.
  for (const IoOp op : {IoOp::kRead, IoOp::kWrite}) {
    const pfs::ClusterConfig cfg = deterministic_config();
    const core::TieredCostParams params = matching_params(cfg);
    const std::vector<Bytes> stripes = {64 * KiB};

    sim::Simulator sim;
    obs::Recorder rec;
    rec.set_predictor([&](IoOp o, Bytes offset, Bytes size) {
      return core::tiered_request_cost(params, o, offset, size, stripes);
    });
    sim.set_observer(&rec);
    pfs::Cluster cluster(sim, cfg);
    auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);

    bool completed = false;
    cluster.client(0).io(*layout, op, 0, 64 * KiB, [&] { completed = true; });
    sim.run();
    ASSERT_TRUE(completed);

    ASSERT_EQ(rec.requests().size(), 1u);
    const obs::Recorder::RequestSample& r = rec.requests().front();
    EXPECT_EQ(r.op, op);
    ASSERT_EQ(r.subs.size(), 1u);  // 64K at offset 0 touches one server
    const obs::Recorder::SubSample& sub = r.subs.front();

    // Analytically known components.
    const Seconds hop = 40e-6 + 64.0 * 1024.0 * 1e-9;
    EXPECT_NEAR(sub.t_x, 2.0 * hop, 1e-12);           // two serialized links
    EXPECT_NEAR(sub.t_s, 500e-6, 1e-12);              // fixed startup window
    EXPECT_NEAR(sub.t_t, 64.0 * 1024.0 * 1e-8 + 50e-6, 1e-12);
    EXPECT_NEAR(sub.wait, 0.0, 1e-12);                // idle queue

    // The decomposition must account for the whole request, end to end.
    EXPECT_NEAR(sub.wait + sub.t_s + sub.t_t + sub.t_x, r.latency(), 1e-12);

    // And the analytic model must reconcile with the measurement.
    ASSERT_GE(r.predicted, 0.0);
    EXPECT_NEAR(r.predicted, r.latency(), 1e-9);
    const LogHistogram* err = rec.metrics().histogram(
        "model.rel_error", obs::LabelSet{}.region(r.region).op(op));
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->count(), 1u);
    EXPECT_LT(err->max(), 1e-6);
  }
}

TEST(Recorder, SubComponentsSumEvenUnderContention) {
  // A striped request whose sub-transfers contend on the client NIC: the
  // per-sub identity wait + T_S + T_T + T_X == done - issue must still hold
  // exactly, because queueing shows up in wait (storage) or T_X (network).
  const pfs::ClusterConfig cfg = deterministic_config();
  sim::Simulator sim;
  obs::Recorder rec;
  sim.set_observer(&rec);
  pfs::Cluster cluster(sim, cfg);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);

  int completed = 0;
  cluster.client(0).io(*layout, IoOp::kRead, 0, 256 * KiB,
                       [&] { ++completed; });
  cluster.client(0).io(*layout, IoOp::kWrite, 256 * KiB, 256 * KiB,
                       [&] { ++completed; });
  sim.run();
  ASSERT_EQ(completed, 2);

  ASSERT_EQ(rec.requests().size(), 2u);
  for (const auto& r : rec.requests()) {
    ASSERT_GT(r.subs.size(), 1u);
    Seconds last_done = 0.0;
    for (const auto& sub : r.subs) {
      EXPECT_NEAR(sub.wait + sub.t_s + sub.t_t + sub.t_x,
                  sub.done - sub.issue, 1e-12);
      last_done = std::max(last_done, sub.done);
    }
    // The request completes when its slowest sub-request does.
    EXPECT_NEAR(last_done, r.done, 1e-12);
  }
  EXPECT_EQ(rec.requests_completed(), 2u);
}

TEST(Recorder, ReproducesFig1aImbalanceOrderingUnderRoundRobin) {
  // The paper's Fig. 1a story: uniform round-robin striping on a hybrid
  // cluster loads every server with the same bytes, so the HDD servers'
  // I/O time dominates the SSD servers'.  The recorder's per-server
  // summaries and metrics must reproduce that ordering.
  pfs::ClusterConfig cfg;  // paper default: 6 HServers + 2 SServers
  cfg.num_clients = 4;
  sim::Simulator sim;
  obs::Recorder rec;
  sim.set_observer(&rec);
  pfs::Cluster cluster(sim, cfg);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);

  int completed = 0;
  for (int i = 0; i < 16; ++i) {
    cluster.client(i % 4).io(*layout, i % 2 ? IoOp::kRead : IoOp::kWrite,
                             static_cast<Bytes>(i) * MiB, 1 * MiB,
                             [&] { ++completed; });
  }
  sim.run();
  ASSERT_EQ(completed, 16);

  double hdd_busy = 0.0, ssd_busy = 0.0;
  std::size_t hdd_n = 0, ssd_n = 0;
  for (const auto& s : rec.resource_summaries()) {
    if (s.kind != obs::TrackKind::kServerDisk) continue;
    EXPECT_GT(s.jobs, 0u);
    if (s.is_ssd) {
      ssd_busy += s.busy;
      ++ssd_n;
    } else {
      hdd_busy += s.busy;
      ++hdd_n;
    }
  }
  ASSERT_EQ(hdd_n, 6u);
  ASSERT_EQ(ssd_n, 2u);
  EXPECT_GT(hdd_busy / static_cast<double>(hdd_n),
            ssd_busy / static_cast<double>(ssd_n));

  // Same ordering through the metrics registry's per-server byte counters:
  // round-robin spreads bytes evenly, so the imbalance is time, not bytes.
  const auto& reg = rec.metrics();
  const double bytes_h0 = reg.value(
      "pfs.server.bytes", obs::LabelSet{}.server(0).tier(0).op(IoOp::kRead));
  const double bytes_s7 = reg.value(
      "pfs.server.bytes", obs::LabelSet{}.server(7).tier(1).op(IoOp::kRead));
  EXPECT_DOUBLE_EQ(bytes_h0, bytes_s7);
}

TEST(Recorder, MetricsJsonIsWellFormedEnoughToGrep) {
  const pfs::ClusterConfig cfg = deterministic_config();
  sim::Simulator sim;
  obs::Recorder rec;
  sim.set_observer(&rec);
  pfs::Cluster cluster(sim, cfg);
  auto layout = pfs::make_fixed_layout(cluster.num_servers(), 64 * KiB);
  bool completed = false;
  cluster.client(0).io(*layout, IoOp::kRead, 0, 64 * KiB,
                       [&] { completed = true; });
  sim.run();
  ASSERT_TRUE(completed);

  std::ostringstream out;
  rec.write_metrics_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"horizon_s\""), std::string::npos);
  EXPECT_NE(json.find("\"requests_completed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"resources\""), std::string::npos);
  EXPECT_NE(json.find("\"busy_timeline\""), std::string::npos);
  EXPECT_NE(json.find("\"depth_timeline\""), std::string::npos);
  EXPECT_NE(json.find("client.request.latency"), std::string::npos);
  EXPECT_NE(json.find("request.t_x"), std::string::npos);
}

}  // namespace
}  // namespace harl
