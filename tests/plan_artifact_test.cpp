// Tests for the versioned Plan artifact (core/plan_artifact.hpp): the
// single-file serialization of an Analysis Phase result that lets the
// Placing Phase run in a separate process.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/plan_artifact.hpp"

namespace harl::core {
namespace {

PlanArtifact sample_artifact(bool with_files = true) {
  PlanArtifact artifact;
  artifact.tier_counts = {6, 2};
  artifact.calibration_fingerprint = 0x0123456789abcdefull;
  artifact.rst.add(0, {16 * KiB, 64 * KiB});
  artifact.rst.add(128 * MiB, {36 * KiB, 144 * KiB});
  artifact.rst.add(192 * MiB, {0, 80 * KiB});
  if (with_files) {
    artifact.region_files = {"app.dat.r0", "app.dat.r1", "app.dat.r2"};
  }
  return artifact;
}

/// Device-aware artifact: an aged SSD tier plus one member-restricted
/// region — the shape that forces the version-2 encoding.
PlanArtifact device_artifact() {
  PlanArtifact artifact;
  artifact.tier_counts = {6, 4};
  artifact.calibration_fingerprint = 0xfeedfacecafebeefull;
  artifact.device_factors = {{}, {1.0, 1.0, 2.0, 2.0}};
  artifact.rst.add(0, {16 * KiB, 64 * KiB});
  artifact.rst.add(128 * MiB, {0, 128 * KiB}, {0, 2});
  artifact.rst.add(192 * MiB, {36 * KiB, 144 * KiB});
  return artifact;
}

PlanArtifact three_tier_artifact() {
  PlanArtifact artifact;
  artifact.tier_counts = {4, 2, 2};
  artifact.calibration_fingerprint = 42;
  artifact.rst.add(0, {16 * KiB, 64 * KiB, 128 * KiB});
  artifact.rst.add(64 * MiB, {0, 0, 256 * KiB});
  return artifact;
}

void expect_equal(const PlanArtifact& got, const PlanArtifact& want) {
  EXPECT_EQ(got.tier_counts, want.tier_counts);
  EXPECT_EQ(got.calibration_fingerprint, want.calibration_fingerprint);
  ASSERT_EQ(got.rst.size(), want.rst.size());
  EXPECT_EQ(got.device_factors, want.device_factors);
  for (std::size_t i = 0; i < want.rst.size(); ++i) {
    SCOPED_TRACE("region " + std::to_string(i));
    EXPECT_EQ(got.rst.entry(i).offset, want.rst.entry(i).offset);
    EXPECT_EQ(got.rst.entry(i).stripes, want.rst.entry(i).stripes);
    EXPECT_EQ(got.rst.entry(i).members, want.rst.entry(i).members);
  }
  EXPECT_EQ(got.region_files, want.region_files);
}

TEST(PlanArtifact, BinaryRoundTrips) {
  const PlanArtifact artifact = sample_artifact();
  std::stringstream ss;
  save_plan_binary(artifact, ss);
  expect_equal(load_plan_binary(ss), artifact);
}

TEST(PlanArtifact, BinaryRoundTripsWithoutFileNames) {
  const PlanArtifact artifact = sample_artifact(/*with_files=*/false);
  std::stringstream ss;
  save_plan_binary(artifact, ss);
  expect_equal(load_plan_binary(ss), artifact);
}

TEST(PlanArtifact, BinaryRoundTripsThreeTiers) {
  const PlanArtifact artifact = three_tier_artifact();
  std::stringstream ss;
  save_plan_binary(artifact, ss);
  expect_equal(load_plan_binary(ss), artifact);
}

TEST(PlanArtifact, CsvRoundTrips) {
  const PlanArtifact artifact = sample_artifact();
  std::stringstream ss;
  save_plan_csv(artifact, ss);
  expect_equal(load_plan_csv(ss), artifact);
}

TEST(PlanArtifact, CsvRoundTripsThreeTiers) {
  const PlanArtifact artifact = three_tier_artifact();
  std::stringstream ss;
  save_plan_csv(artifact, ss);
  expect_equal(load_plan_csv(ss), artifact);
}

TEST(PlanArtifact, RejectsBadMagic) {
  std::stringstream ss("NOTAPLAN........................");
  EXPECT_THROW(load_plan_binary(ss), std::runtime_error);
}

TEST(PlanArtifact, RejectsTruncation) {
  const PlanArtifact artifact = sample_artifact();
  std::stringstream full;
  save_plan_binary(artifact, full);
  const std::string bytes = full.str();
  // Any prefix strictly shorter than the full artifact must be rejected,
  // never silently produce a partial table.
  for (const std::size_t len :
       {std::size_t{4}, std::size_t{11}, std::size_t{20}, bytes.size() / 2,
        bytes.size() - 1}) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    std::stringstream cut(bytes.substr(0, len));
    EXPECT_THROW(load_plan_binary(cut), std::runtime_error);
  }
}

TEST(PlanArtifact, RejectsVersionMismatch) {
  const PlanArtifact artifact = sample_artifact();
  std::stringstream full;
  save_plan_binary(artifact, full);
  std::string bytes = full.str();
  // The version is the little-endian u32 right after the 8-byte magic.
  bytes[8] = static_cast<char>(kPlanArtifactVersion + 1);
  std::stringstream patched(bytes);
  try {
    load_plan_binary(patched);
    FAIL() << "version mismatch was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(PlanArtifact, RejectsCorruptTierCount) {
  const PlanArtifact artifact = sample_artifact();
  std::stringstream full;
  save_plan_binary(artifact, full);
  std::string bytes = full.str();
  // Tier count is the u32 after magic + version; forge an absurd value.
  bytes[12] = static_cast<char>(0xff);
  bytes[13] = static_cast<char>(0xff);
  std::stringstream patched(bytes);
  EXPECT_THROW(load_plan_binary(patched), std::runtime_error);
}

TEST(PlanArtifact, RejectsFileCountMismatch) {
  PlanArtifact artifact = sample_artifact();
  artifact.region_files.pop_back();  // 2 names, 3 regions
  std::stringstream ss;
  EXPECT_THROW(save_plan_binary(artifact, ss), std::runtime_error);
  EXPECT_THROW(save_plan_csv(artifact, ss), std::runtime_error);
}

TEST(PlanArtifact, RejectsRstTierTableMismatch) {
  PlanArtifact artifact = sample_artifact(/*with_files=*/false);
  artifact.tier_counts = {6, 2, 1};  // RST rows carry 2 stripes each
  std::stringstream ss;
  EXPECT_THROW(save_plan_binary(artifact, ss), std::runtime_error);
  EXPECT_THROW(save_plan_csv(artifact, ss), std::runtime_error);
}

TEST(PlanArtifact, RejectsBadCsvHeader) {
  std::stringstream ss("not-a-plan\nfingerprint,1\n");
  EXPECT_THROW(load_plan_csv(ss), std::runtime_error);
}

TEST(PlanArtifact, RejectsCsvMissingHeaderRows) {
  // A region row before the tiers row is declared malformed, as is a file
  // that never states its fingerprint or tier table.
  {
    std::stringstream ss("harl-plan-csv-v1\nregion,0,16384,65536\n");
    EXPECT_THROW(load_plan_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("harl-plan-csv-v1\ntiers,6,2\n");
    EXPECT_THROW(load_plan_csv(ss), std::runtime_error);
  }
}

TEST(PlanArtifact, RejectsMalformedCsvRows) {
  const std::string header = "harl-plan-csv-v1\nfingerprint,1\ntiers,6,2\n";
  for (const std::string row :
       {"region,0,16384\n",              // too few stripes
        "region,0,16384,65536,4096\n",   // too many stripes
        "region,zero,16384,65536\n",     // non-numeric
        "bogus,1,2\n"}) {                // unknown row kind
    SCOPED_TRACE(row);
    std::stringstream ss(header + row);
    EXPECT_THROW(load_plan_csv(ss), std::runtime_error);
  }
}

TEST(PlanArtifact, FromPlanCarriesTierTableAndFingerprint) {
  Plan plan;
  plan.tier_counts = {6, 2};
  plan.calibration_fingerprint = 7;
  plan.rst.add(0, {16 * KiB, 64 * KiB});
  const PlanArtifact artifact = PlanArtifact::from_plan(plan);
  EXPECT_EQ(artifact.tier_counts, plan.tier_counts);
  EXPECT_EQ(artifact.calibration_fingerprint, 7u);
  ASSERT_EQ(artifact.rst.size(), 1u);
  EXPECT_TRUE(artifact.region_files.empty());
}

TEST(PlanArtifact, PathBasedSaveLoadPicksFormatByExtension) {
  const PlanArtifact artifact = sample_artifact();
  const std::string dir = ::testing::TempDir();
  const std::string bin_path = dir + "/artifact_test.plan";
  const std::string csv_path = dir + "/artifact_test.plan.csv";
  save_plan(artifact, bin_path);
  save_plan(artifact, csv_path);
  expect_equal(load_plan(bin_path), artifact);
  expect_equal(load_plan(csv_path), artifact);
  // The CSV form is human-readable text, the binary form starts with magic.
  std::ifstream csv(csv_path);
  std::string first_line;
  std::getline(csv, first_line);
  EXPECT_EQ(first_line, "harl-plan-csv-v1");
}

TEST(PlanArtifact, LoadOnMissingFileThrows) {
  EXPECT_THROW(load_plan("/nonexistent/nope.plan"), std::runtime_error);
}

TEST(PlanArtifact, DeviceTableRoundTripsBinary) {
  const PlanArtifact artifact = device_artifact();
  std::stringstream ss;
  save_plan_binary(artifact, ss);
  expect_equal(load_plan_binary(ss), artifact);
}

TEST(PlanArtifact, DeviceTableRoundTripsCsv) {
  const PlanArtifact artifact = device_artifact();
  std::stringstream ss;
  save_plan_csv(artifact, ss);
  const std::string text = ss.str();
  // The inspectable form names the aged tier and the restricted region.
  EXPECT_NE(text.find("devtier,1,1,1,2,2"), std::string::npos) << text;
  EXPECT_NE(text.find("members,1,0,2"), std::string::npos) << text;
  std::stringstream in(text);
  expect_equal(load_plan_csv(in), artifact);
}

TEST(PlanArtifact, HomogeneousPlansKeepTheVersionOneEncoding) {
  // Byte-compatibility both ways: a plan without device information writes
  // the pre-device-model version-1 bytes (so old readers still load it),
  // and device information forces version 2.
  std::stringstream plain;
  save_plan_binary(sample_artifact(), plain);
  EXPECT_EQ(plain.str()[8], 1);

  std::stringstream dev;
  save_plan_binary(device_artifact(), dev);
  EXPECT_EQ(dev.str()[8], 2);

  // An artifact whose device table exists but is all-empty carries no
  // device information: still version 1.
  PlanArtifact hollow = sample_artifact();
  hollow.device_factors = {{}, {}};
  std::stringstream hollow_ss;
  save_plan_binary(hollow, hollow_ss);
  EXPECT_EQ(hollow_ss.str()[8], 1);
}

TEST(PlanArtifact, VersionOneArtifactLoadsWithEmptyDeviceTable) {
  // A pre-device-model artifact (version-1 bytes) must load cleanly with
  // the device fields defaulting to "homogeneous".
  std::stringstream ss;
  save_plan_binary(sample_artifact(), ss);
  ASSERT_EQ(ss.str()[8], 1);
  const PlanArtifact loaded = load_plan_binary(ss);
  EXPECT_TRUE(loaded.device_factors.empty());
  for (const RstEntry& e : loaded.rst.entries()) {
    EXPECT_TRUE(e.members.empty());
  }
}

TEST(PlanArtifact, RejectsTruncationMidDeviceTable) {
  const PlanArtifact artifact = device_artifact();
  std::stringstream full;
  save_plan_binary(artifact, full);
  const std::string bytes = full.str();
  // The device table and member section are the trailing
  // 2*8 + 4*8 + 8 + 3*2*8 = 104 bytes; every cut inside them (and the
  // byte before) must throw, never yield a partially-device-aware plan.
  for (std::size_t len = bytes.size() - 105; len < bytes.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    std::stringstream cut(bytes.substr(0, len));
    EXPECT_THROW(load_plan_binary(cut), std::runtime_error);
  }
}

TEST(PlanArtifact, RejectsDeviceTableShapeMismatch) {
  // A device table whose shape disagrees with the tier table is refused on
  // save (and by symmetry on load, which routes through the same check).
  PlanArtifact artifact = device_artifact();
  artifact.device_factors = {{1.0, 1.0, 2.0, 2.0}};  // 1 row, 2 tiers
  std::stringstream ss;
  EXPECT_THROW(save_plan_binary(artifact, ss), std::runtime_error);
  EXPECT_THROW(save_plan_csv(artifact, ss), std::runtime_error);

  artifact.device_factors = {{}, {1.0, 2.0}};  // 2 factors, 4 servers
  EXPECT_THROW(save_plan_binary(artifact, ss), std::runtime_error);
  EXPECT_THROW(save_plan_csv(artifact, ss), std::runtime_error);
}

TEST(PlanArtifact, RejectsMalformedDeviceCsvRows) {
  const std::string header = "harl-plan-csv-v1\nfingerprint,1\ntiers,6,4\n";
  for (const std::string row :
       {"devtier,2,1,2\n",        // tier index out of range
        "devtier,1\n",            // no factors
        "devtier,1,fast,2\n",     // non-numeric factor
        "members,0,0,2\n"}) {     // members row before any region row
    SCOPED_TRACE(row);
    std::stringstream ss(header + row);
    EXPECT_THROW(load_plan_csv(ss), std::runtime_error);
  }
}

TEST(PlanArtifact, FromPlanCarriesTheDeviceTable) {
  Plan plan;
  plan.tier_counts = {6, 4};
  plan.calibration_fingerprint = 7;
  plan.device_factors = {{}, {1.0, 1.0, 2.0, 2.0}};
  plan.rst.add(0, {16 * KiB, 64 * KiB}, {0, 2});
  const PlanArtifact artifact = PlanArtifact::from_plan(plan);
  EXPECT_EQ(artifact.device_factors, plan.device_factors);
  ASSERT_EQ(artifact.rst.size(), 1u);
  EXPECT_EQ(artifact.rst.entry(0).members, (std::vector<std::size_t>{0, 2}));
}

}  // namespace
}  // namespace harl::core
