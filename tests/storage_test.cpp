// Unit tests for storage device models and the device profiler.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/storage/hdd.hpp"
#include "src/storage/profiler.hpp"
#include "src/storage/profiles.hpp"
#include "src/storage/ssd.hpp"

namespace harl::storage {
namespace {

TEST(Profiles, PresetsAreInternallyConsistent) {
  for (const TierProfile& p : {hdd_profile(), pcie_ssd_profile(),
                               sata_ssd_profile(), nvme_ssd_profile()}) {
    SCOPED_TRACE(p.name);
    EXPECT_LE(p.read.startup_min, p.read.startup_max);
    EXPECT_LE(p.write.startup_min, p.write.startup_max);
    EXPECT_GT(p.read.per_byte, 0.0);
    EXPECT_GT(p.write.per_byte, 0.0);
  }
}

TEST(Profiles, SsdIsFasterThanHddAndWriteSlowerThanRead) {
  const TierProfile hdd = hdd_profile();
  const TierProfile ssd = pcie_ssd_profile();
  EXPECT_LT(ssd.read.startup_max, hdd.read.startup_min);
  EXPECT_LT(ssd.read.per_byte, hdd.read.per_byte);
  // Paper Section III-D: SSD writes are slower than SSD reads.
  EXPECT_GT(ssd.write.per_byte, ssd.read.per_byte);
  EXPECT_GT(ssd.write.startup_max, ssd.read.startup_max);
}

TEST(Profiles, OpSelectorPicksTheRightSide) {
  const TierProfile p = pcie_ssd_profile();
  EXPECT_EQ(p.op(IoOp::kRead).per_byte, p.read.per_byte);
  EXPECT_EQ(p.op(IoOp::kWrite).per_byte, p.write.per_byte);
}

TEST(Hdd, ServiceTimeWithinModelBounds) {
  HddDevice hdd(hdd_profile(), 1, /*sequential_factor=*/1.0);
  const OpProfile& p = hdd_profile().read;
  for (int i = 0; i < 1000; ++i) {
    // Random-ish distinct offsets: never sequential.
    const Bytes offset = static_cast<Bytes>(i) * 10 * MiB;
    const Seconds t = hdd.service_time(IoOp::kRead, offset, 64 * KiB);
    const double transfer = 64.0 * 1024.0 * p.per_byte;
    EXPECT_GE(t, p.startup_min + transfer);
    EXPECT_LE(t, p.startup_max + transfer);
  }
}

TEST(Hdd, SequentialAccessGetsDiscountedStartup) {
  HddDevice hdd(hdd_profile(), 2, /*sequential_factor=*/0.0);
  const OpProfile& p = hdd_profile().read;
  hdd.service_time(IoOp::kRead, 0, 1 * MiB);
  // Next access starts where the last one ended: startup fully discounted.
  const Seconds t = hdd.service_time(IoOp::kRead, 1 * MiB, 1 * MiB);
  EXPECT_DOUBLE_EQ(t, static_cast<double>(1 * MiB) * p.per_byte);
}

TEST(Hdd, NonSequentialAccessPaysFullStartup) {
  HddDevice hdd(hdd_profile(), 3, /*sequential_factor=*/0.0);
  hdd.service_time(IoOp::kRead, 0, 1 * MiB);
  const Seconds t = hdd.service_time(IoOp::kRead, 5 * MiB, 1 * MiB);
  EXPECT_GT(t, static_cast<double>(1 * MiB) * hdd_profile().read.per_byte);
}

TEST(Hdd, ResetReplaysIdenticalServiceTimes) {
  HddDevice hdd(hdd_profile(), 4);
  std::vector<Seconds> first;
  for (int i = 0; i < 50; ++i) {
    first.push_back(hdd.service_time(IoOp::kRead, static_cast<Bytes>(i) * MiB, 4 * KiB));
  }
  hdd.reset();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(hdd.service_time(IoOp::kRead, static_cast<Bytes>(i) * MiB, 4 * KiB),
              first[static_cast<size_t>(i)]);
  }
}

TEST(Hdd, RejectsBadSequentialFactor) {
  EXPECT_THROW(HddDevice(hdd_profile(), 1, -0.1), std::invalid_argument);
  EXPECT_THROW(HddDevice(hdd_profile(), 1, 1.5), std::invalid_argument);
}

TEST(Hdd, LargerAccessesTakeLonger) {
  HddDevice hdd(hdd_profile(), 5, 1.0);
  Seconds small_total = 0.0;
  Seconds large_total = 0.0;
  for (int i = 0; i < 200; ++i) {
    small_total += hdd.service_time(IoOp::kRead, static_cast<Bytes>(2 * i) * 16 * MiB, 4 * KiB);
    large_total += hdd.service_time(IoOp::kRead, static_cast<Bytes>(2 * i + 1) * 16 * MiB, 4 * MiB);
  }
  EXPECT_GT(large_total, small_total);
}

TEST(Ssd, ReadFasterThanWriteOnAverage) {
  SsdDevice ssd(pcie_ssd_profile(), 6);
  Seconds read_total = 0.0;
  Seconds write_total = 0.0;
  for (int i = 0; i < 500; ++i) {
    read_total += ssd.service_time(IoOp::kRead, 0, 256 * KiB);
    write_total += ssd.service_time(IoOp::kWrite, 0, 256 * KiB);
  }
  EXPECT_GT(write_total, read_total);
}

TEST(Ssd, TracksBytesWritten) {
  SsdDevice ssd(pcie_ssd_profile(), 7);
  ssd.service_time(IoOp::kWrite, 0, 100);
  ssd.service_time(IoOp::kRead, 0, 999);  // reads don't count
  ssd.service_time(IoOp::kWrite, 0, 28);
  EXPECT_EQ(ssd.bytes_written(), 128u);
  ssd.reset();
  EXPECT_EQ(ssd.bytes_written(), 0u);
}

TEST(Ssd, GcStallsTriggerEveryInterval) {
  SsdDevice::GcModel gc{1 * MiB, 0.5};
  SsdDevice with_gc(pcie_ssd_profile(), 8, gc);
  SsdDevice without_gc(pcie_ssd_profile(), 8);
  Seconds t_gc = 0.0;
  Seconds t_plain = 0.0;
  for (int i = 0; i < 8; ++i) {
    t_gc += with_gc.service_time(IoOp::kWrite, 0, 512 * KiB);
    t_plain += without_gc.service_time(IoOp::kWrite, 0, 512 * KiB);
  }
  // 4 MiB written -> 4 stalls of 0.5 s.
  EXPECT_NEAR(t_gc - t_plain, 4 * 0.5, 1e-9);
}

TEST(Ssd, ResetReplaysIdenticalStream) {
  SsdDevice ssd(pcie_ssd_profile(), 9);
  const Seconds a = ssd.service_time(IoOp::kWrite, 0, 64 * KiB);
  ssd.reset();
  EXPECT_EQ(ssd.service_time(IoOp::kWrite, 0, 64 * KiB), a);
}

// ------------------------------------------------------------- profiler ----

class ProfilerFitsKnownDevice : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfilerFitsKnownDevice, RecoverasAlphaBetaWithinTolerance) {
  TierProfile nominal;
  if (std::string(GetParam()) == "hdd") {
    nominal = hdd_profile();
  } else if (std::string(GetParam()) == "pcie") {
    nominal = pcie_ssd_profile();
  } else {
    nominal = sata_ssd_profile();
  }

  // Fit against a device with no sequential discount so the model matches
  // the alpha + size*beta form exactly.
  HddDevice device(nominal, 77, /*sequential_factor=*/1.0);
  ProfilerOptions opts;
  opts.samples_per_size = 4000;
  const TierProfile fitted = profile_device(device, opts);

  for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
    const OpProfile& truth = nominal.op(op);
    const OpProfile& fit = fitted.op(op);
    EXPECT_NEAR(fit.per_byte, truth.per_byte, truth.per_byte * 0.15);
    // The startup window is recovered from residual extremes: bounds are
    // inside the truth window and close to its edges.
    EXPECT_GE(fit.startup_min, truth.startup_min * 0.5);
    EXPECT_LE(fit.startup_max, truth.startup_max * 1.3);
    const double window = truth.startup_max - truth.startup_min;
    EXPECT_NEAR(fit.startup_min, truth.startup_min, 0.25 * window + 1e-6);
    EXPECT_NEAR(fit.startup_max, truth.startup_max, 0.25 * window + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, ProfilerFitsKnownDevice,
                         ::testing::Values("hdd", "pcie", "sata"));

TEST(Profiler, ResetsDeviceStateAfterProbing) {
  HddDevice device(hdd_profile(), 12);
  const Seconds before = device.service_time(IoOp::kRead, 0, 4 * KiB);
  device.reset();
  profile_device(device);
  EXPECT_EQ(device.service_time(IoOp::kRead, 0, 4 * KiB), before);
}

TEST(Profiler, RejectsBadOptions) {
  HddDevice device(hdd_profile(), 13);
  ProfilerOptions bad;
  bad.small_size = 1 * MiB;
  bad.large_size = 4 * KiB;
  EXPECT_THROW(profile_device(device, bad), std::invalid_argument);
  ProfilerOptions few;
  few.samples_per_size = 1;
  EXPECT_THROW(profile_device(device, few), std::invalid_argument);
}

}  // namespace
}  // namespace harl::storage
