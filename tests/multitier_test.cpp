// Tests for the multi-tier extension (the paper's stated future work):
// tier-group clusters, the k-tier layout helper, and the generalized
// stripe optimizer.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/core/plan_artifact.hpp"
#include "src/core/planner.hpp"
#include "src/core/stripe_optimizer.hpp"
#include "src/middleware/harl_driver.hpp"
#include "src/pfs/cluster.hpp"
#include "src/sim/simulator.hpp"
#include "src/storage/profiles.hpp"
#include "src/trace/record.hpp"

namespace harl {
namespace {

pfs::ClusterConfig three_tier_config() {
  pfs::ClusterConfig cfg;
  cfg.tiers = {
      pfs::TierGroup{"hdd", 4, storage::hdd_profile(), false},
      pfs::TierGroup{"sata", 2, storage::sata_ssd_profile(), true},
      pfs::TierGroup{"nvme", 2, storage::nvme_ssd_profile(), true},
  };
  cfg.num_clients = 4;
  return cfg;
}

core::TieredCostParams three_tier_params() {
  core::TieredCostParams p;
  p.t = 1.0 / (117.0 * 1024 * 1024);
  p.tiers = {
      core::TierSpec{4, storage::hdd_profile()},
      core::TierSpec{2, storage::sata_ssd_profile()},
      core::TierSpec{2, storage::nvme_ssd_profile()},
  };
  // Calibrated-style HDD parameters (see harness::calibrate).
  auto& hdd = p.tiers[0].profile;
  for (storage::OpProfile* prof : {&hdd.read, &hdd.write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.55;
    prof->startup_max *= 0.55;
  }
  return p;
}

std::vector<FileRequest> uniform_requests(Bytes size, std::size_t count) {
  Rng rng(5);
  std::vector<FileRequest> reqs;
  for (std::size_t i = 0; i < count; ++i) {
    reqs.push_back(FileRequest{i % 2 ? IoOp::kRead : IoOp::kWrite,
                               rng.uniform_u64(0, 2048) * size, size});
  }
  return reqs;
}

// ----------------------------------------------------------- cluster ----

TEST(TieredCluster, BuildsGroupsInOrder) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, three_tier_config());
  EXPECT_EQ(cluster.num_servers(), 8u);
  EXPECT_EQ(cluster.num_tiers(), 3u);
  EXPECT_EQ(cluster.tier(0).name, "hdd");
  EXPECT_EQ(cluster.tier_begin(0), 0u);
  EXPECT_EQ(cluster.tier_begin(1), 4u);
  EXPECT_EQ(cluster.tier_begin(2), 6u);
  EXPECT_EQ(cluster.server(0).name(), "hdd0");
  EXPECT_EQ(cluster.server(4).name(), "sata0");
  EXPECT_EQ(cluster.server(7).name(), "nvme1");
  EXPECT_FALSE(cluster.server(3).is_ssd());
  EXPECT_TRUE(cluster.server(4).is_ssd());
  // Aggregate H/S counts still make sense.
  EXPECT_EQ(cluster.num_hservers(), 4u);
  EXPECT_EQ(cluster.num_sservers(), 4u);
}

TEST(TieredCluster, TwoTierConfigSynthesizesGroups) {
  pfs::ClusterConfig cfg;  // defaults: 6 HDD + 2 SSD
  const auto groups = cfg.effective_tiers();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].count, 6u);
  EXPECT_FALSE(groups[0].is_ssd);
  EXPECT_EQ(groups[1].count, 2u);
  EXPECT_TRUE(groups[1].is_ssd);

  sim::Simulator sim;
  pfs::Cluster cluster(sim, cfg);
  EXPECT_EQ(cluster.num_tiers(), 2u);
  EXPECT_EQ(cluster.num_hservers(), 6u);
  EXPECT_EQ(cluster.num_sservers(), 2u);
}

TEST(TieredCluster, ServesIoAcrossAllTiers) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, three_tier_config());
  const std::vector<std::size_t> counts = {4, 2, 2};
  const std::vector<Bytes> stripes = {16 * KiB, 64 * KiB, 128 * KiB};
  auto layout = pfs::make_tiered_layout(counts, stripes);
  const Bytes period = 4 * 16 * KiB + 2 * 64 * KiB + 2 * 128 * KiB;
  bool done = false;
  cluster.client(0).io(*layout, IoOp::kWrite, 0, period, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster.server(0).bytes_written(), 16 * KiB);
  EXPECT_EQ(cluster.server(4).bytes_written(), 64 * KiB);
  EXPECT_EQ(cluster.server(7).bytes_written(), 128 * KiB);
}

TEST(TieredLayout, ValidatesShapes) {
  EXPECT_THROW(pfs::make_tiered_layout({1, 2}, {4 * KiB}),
               std::invalid_argument);
  auto layout = pfs::make_tiered_layout({2, 1}, {0, 64 * KiB});
  EXPECT_EQ(layout->server_count(), 3u);
  EXPECT_EQ(layout->period(), 64 * KiB);
}

// --------------------------------------------------------- optimizer ----

TEST(TieredOptimizer, StripesAreMonotoneAcrossTiers) {
  const auto p = three_tier_params();
  const auto reqs = uniform_requests(1 * MiB, 48);
  core::TieredOptimizerOptions opts;
  opts.step = 32 * KiB;
  const auto result = core::optimize_region_tiered(p, reqs, 1.0 * MiB, opts);
  ASSERT_EQ(result.stripes.size(), 3u);
  EXPECT_LE(result.stripes[0], result.stripes[1]);
  EXPECT_LE(result.stripes[1], result.stripes[2]);
  EXPECT_GT(result.stripes[2], 0u);
  EXPECT_GT(result.candidates_evaluated, 10u);
}

TEST(TieredOptimizer, TwoTierAgreesWithDedicatedAlgorithm2) {
  // On a two-tier cluster the generalized search must find the same optimum
  // as the paper's Algorithm 2 (same grid, same model).
  core::TieredCostParams p2;
  p2.t = 1.0 / (117.0 * 1024 * 1024);
  auto hdd = storage::hdd_profile();
  for (storage::OpProfile* prof : {&hdd.read, &hdd.write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.55;
    prof->startup_max *= 0.55;
  }
  p2.tiers = {core::TierSpec{6, hdd},
              core::TierSpec{2, storage::pcie_ssd_profile()}};

  core::CostParams dedicated;
  dedicated = core::make_cost_params(6, 2, hdd, storage::pcie_ssd_profile(),
                                     p2.t);

  const auto reqs = uniform_requests(512 * KiB, 64);
  core::TieredOptimizerOptions topts;
  topts.step = 8 * KiB;
  const auto tiered = core::optimize_region_tiered(p2, reqs, 512.0 * KiB, topts);

  core::OptimizerOptions opts2;
  opts2.step = 8 * KiB;
  const auto two = core::optimize_region(dedicated, reqs, 512.0 * KiB, opts2);

  // Same model cost; the stripe pair may differ only within cost ties.
  EXPECT_NEAR(tiered.model_cost, two.model_cost,
              two.model_cost * 1e-9);
  // Note: Algorithm 2's grid requires s > h strictly while the generalized
  // grid allows s == h; equal-cost ties can therefore differ, but the
  // h < s shape must match.
  EXPECT_LE(tiered.stripes[0], tiered.stripes[1]);
}

TEST(TieredOptimizer, FastTierGetsTheLargestStripes) {
  const auto p = three_tier_params();
  const auto reqs = uniform_requests(2 * MiB, 32);
  core::TieredOptimizerOptions opts;
  opts.step = 64 * KiB;
  const auto result = core::optimize_region_tiered(p, reqs, 2.0 * MiB, opts);
  // NVMe strictly outranks the HDD tier for big hybrid spreads.
  EXPECT_GT(result.stripes[2], result.stripes[0]);
}

TEST(TieredOptimizer, BeatsCollapsedTwoTierOnTheModel) {
  // Collapse SATA+NVMe into one blended tier, optimize, re-expand, and
  // compare model costs: tier awareness can only help.
  const auto p3 = three_tier_params();
  const auto reqs = uniform_requests(2 * MiB, 32);
  core::TieredOptimizerOptions opts;
  opts.step = 64 * KiB;
  const auto aware = core::optimize_region_tiered(p3, reqs, 2.0 * MiB, opts);

  core::TieredCostParams collapsed = p3;
  storage::TierProfile blended = storage::sata_ssd_profile();
  const storage::TierProfile nvme = storage::nvme_ssd_profile();
  for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
    storage::OpProfile& out = op == IoOp::kRead ? blended.read : blended.write;
    out.startup_min = 0.5 * (out.startup_min + nvme.op(op).startup_min);
    out.startup_max = 0.5 * (out.startup_max + nvme.op(op).startup_max);
    out.per_byte = 0.5 * (out.per_byte + nvme.op(op).per_byte);
  }
  collapsed.tiers = {p3.tiers[0], core::TierSpec{4, blended}};
  const auto blind = core::optimize_region_tiered(collapsed, reqs, 2.0 * MiB, opts);
  // Evaluate the blind choice on the *real* three-tier cluster.
  const std::vector<Bytes> expanded = {blind.stripes[0], blind.stripes[1],
                                       blind.stripes[1]};
  const Seconds blind_cost = core::tiered_region_cost(p3, reqs, expanded);
  EXPECT_LE(aware.model_cost, blind_cost + 1e-12);
}

TEST(TieredOptimizer, ParallelMatchesSerial) {
  const auto p = three_tier_params();
  const auto reqs = uniform_requests(1 * MiB, 32);
  core::TieredOptimizerOptions serial;
  serial.step = 64 * KiB;
  const auto a = core::optimize_region_tiered(p, reqs, 1.0 * MiB, serial);

  ThreadPool pool(3);
  core::TieredOptimizerOptions parallel = serial;
  parallel.pool = &pool;
  const auto b = core::optimize_region_tiered(p, reqs, 1.0 * MiB, parallel);
  EXPECT_EQ(a.stripes, b.stripes);
  EXPECT_DOUBLE_EQ(a.model_cost, b.model_cost);
}

TEST(TieredOptimizer, CoalescedSearchIsBitIdenticalToBruteForce) {
  // The k-tier cost is periodic in the offset with period
  // sum(count_j * stripe_j); coalescing memoizes per class but sums in
  // original order, so the result matches brute force bit for bit.
  const auto p = three_tier_params();
  const auto reqs = uniform_requests(1 * MiB, 48);
  core::TieredOptimizerOptions brute;
  brute.step = 64 * KiB;
  brute.coalesce = false;
  core::TieredOptimizerOptions coalesced = brute;
  coalesced.coalesce = true;
  const auto a = core::optimize_region_tiered(p, reqs, 1.0 * MiB, brute);
  const auto b = core::optimize_region_tiered(p, reqs, 1.0 * MiB, coalesced);
  EXPECT_EQ(a.stripes, b.stripes);
  EXPECT_EQ(a.model_cost, b.model_cost);
  EXPECT_EQ(a.cost_evals_saved, 0u);
  EXPECT_GT(b.cost_evals_saved, 0u);
  EXPECT_EQ(b.cost_evals + b.cost_evals_saved, a.cost_evals);
}

TEST(TieredOptimizer, NonMonotoneModeWidensTheGrid) {
  const auto p = three_tier_params();
  const auto reqs = uniform_requests(512 * KiB, 16);
  core::TieredOptimizerOptions mono;
  mono.step = 64 * KiB;
  core::TieredOptimizerOptions free = mono;
  free.monotone = false;
  const auto a = core::optimize_region_tiered(p, reqs, 512.0 * KiB, mono);
  const auto b = core::optimize_region_tiered(p, reqs, 512.0 * KiB, free);
  EXPECT_GT(b.candidates_evaluated, a.candidates_evaluated);
  EXPECT_LE(b.model_cost, a.model_cost + 1e-12);  // superset of candidates
}

TEST(TieredOptimizer, ValidatesInputs) {
  const auto p = three_tier_params();
  const auto reqs = uniform_requests(64 * KiB, 4);
  EXPECT_THROW(core::optimize_region_tiered(p, {}, 64.0 * KiB),
               std::invalid_argument);
  EXPECT_THROW(core::optimize_region_tiered(p, reqs, 0.0),
               std::invalid_argument);
  core::TieredCostParams empty;
  EXPECT_THROW(core::optimize_region_tiered(empty, reqs, 64.0 * KiB),
               std::invalid_argument);
}

// ------------------------------------------------- end-to-end (sim) ----

TEST(TieredIntegration, AwareLayoutBeatsUniformInSimulation) {
  // Run the same IOR-ish request stream on the three-tier cluster under a
  // uniform 64K layout and under the tier-aware optimum.
  const auto p = three_tier_params();
  const auto reqs = uniform_requests(1 * MiB, 64);
  core::TieredOptimizerOptions opts;
  opts.step = 32 * KiB;
  const auto aware = core::optimize_region_tiered(p, reqs, 1.0 * MiB, opts);

  auto run_layout = [&](std::shared_ptr<const pfs::Layout> layout) {
    sim::Simulator sim;
    pfs::Cluster cluster(sim, three_tier_config());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      cluster.client(i % cluster.num_clients())
          .io(*layout, reqs[i].op, reqs[i].offset, reqs[i].size, [] {});
    }
    sim.run();
    return sim.now();
  };

  const std::vector<std::size_t> counts = {4, 2, 2};
  const Seconds uniform = run_layout(pfs::make_fixed_layout(8, 64 * KiB));
  const Seconds tier_aware =
      run_layout(pfs::make_tiered_layout(counts, aware.stripes));
  EXPECT_LT(tier_aware, uniform);
}

TEST(TieredIntegration, PlannerToPlacementUsesOnePath) {
  // Full three-tier pipeline on the generic tier-vector representation:
  // trace -> analyze_tiered -> Plan artifact round trip -> HarlDriver
  // install on a three-tier cluster -> simulated I/O.  Exactly the same
  // placement code the two-tier path uses.
  const auto p = three_tier_params();
  std::vector<trace::TraceRecord> records;
  {
    Rng rng(5);
    for (std::size_t i = 0; i < 128; ++i) {
      trace::TraceRecord rec;
      rec.rank = static_cast<std::uint32_t>(i % 4);
      rec.op = i % 2 ? IoOp::kRead : IoOp::kWrite;
      // Two bands with different request sizes so Algorithm 1 can split.
      if (i % 2) {
        rec.size = 64 * KiB;
        rec.offset = rng.uniform_u64(0, 255) * rec.size;
      } else {
        rec.size = 1 * MiB;
        rec.offset = 64 * MiB + rng.uniform_u64(0, 255) * rec.size;
      }
      rec.t_start = static_cast<Seconds>(i);
      records.push_back(rec);
    }
  }
  core::TieredPlannerOptions opts;
  opts.optimizer.step = 32 * KiB;
  opts.divider.fixed_region_size = 16 * MiB;
  const core::Plan plan = core::analyze_tiered(records, p, opts);
  ASSERT_GE(plan.rst.size(), 1u);
  EXPECT_EQ(plan.rst.num_tiers(), 3u);
  EXPECT_EQ(plan.tier_counts, (std::vector<std::size_t>{4, 2, 2}));
  EXPECT_EQ(plan.calibration_fingerprint, core::params_fingerprint(p));

  // Through the artifact, as a separate Placing process would see it.
  const std::string path =
      ::testing::TempDir() + "/three_tier_roundtrip.plan";
  core::save_plan(core::PlanArtifact::from_plan(plan), path);
  const core::PlanArtifact loaded = core::load_plan(path);
  EXPECT_EQ(loaded.tier_counts, plan.tier_counts);

  sim::Simulator sim;
  pfs::Cluster cluster(sim, three_tier_config());
  const auto layout = mw::HarlDriver::install(loaded, "mt.dat", cluster);
  ASSERT_NE(layout, nullptr);
  EXPECT_EQ(layout->server_count(), 8u);
  EXPECT_EQ(layout->region_count(), loaded.rst.size());
  for (const auto& rec : records) {
    cluster.client(rec.rank % cluster.num_clients())
        .io(*layout, rec.op, rec.offset, rec.size, [] {});
  }
  sim.run();
  EXPECT_GT(sim.now(), 0.0);
}

TEST(TieredIntegration, InstallRejectsMismatchedTierTable) {
  core::PlanArtifact artifact;
  artifact.tier_counts = {6, 2};  // two-tier plan against a 3-tier cluster
  artifact.rst.add(0, {16 * KiB, 64 * KiB});
  sim::Simulator sim;
  pfs::Cluster cluster(sim, three_tier_config());
  EXPECT_THROW(mw::HarlDriver::install(artifact, "mt.dat", cluster),
               std::runtime_error);
}

}  // namespace
}  // namespace harl
