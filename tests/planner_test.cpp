// Tests for the Analysis-Phase planner pipeline (trace -> regions -> RST).
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/core/planner.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {
namespace {

CostParams calibrated_params() {
  CostParams p = make_cost_params(6, 2, storage::hdd_profile(),
                                  storage::pcie_ssd_profile(),
                                  1.0 / (117.0 * 1024 * 1024));
  for (storage::OpProfile* prof : {&p.hserver_read, &p.hserver_write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.55;
    prof->startup_max *= 0.55;
  }
  return p;
}

std::vector<trace::TraceRecord> two_phase_trace() {
  // Region A: 128 KiB requests; region B: 1 MiB requests.
  std::vector<trace::TraceRecord> records;
  Rng rng(17);
  Bytes base = 0;
  for (int i = 0; i < 64; ++i) {
    trace::TraceRecord r;
    r.op = IoOp::kRead;
    r.offset = base;
    r.size = 128 * KiB;
    base += r.size;
    records.push_back(r);
  }
  for (int i = 0; i < 64; ++i) {
    trace::TraceRecord r;
    r.op = IoOp::kRead;
    r.offset = base;
    r.size = 1 * MiB;
    base += r.size;
    records.push_back(r);
  }
  return records;
}

TEST(Planner, AnalyzeProducesARegionPlanWithOptimizedStripes) {
  const auto plan = analyze(two_phase_trace(), calibrated_params());
  EXPECT_GE(plan.regions.size(), 2u);
  EXPECT_FALSE(plan.rst.empty());
  // Small-request region should lean on SServers more than the big one: at
  // minimum, the two regions get different stripe pairs.
  EXPECT_NE(plan.regions.front().stripes, plan.regions.back().stripes);
  EXPECT_GT(plan.total_model_cost(), 0.0);
}

TEST(Planner, PlanRegionsCoverTheFile) {
  const auto plan = analyze(two_phase_trace(), calibrated_params());
  EXPECT_EQ(plan.regions.front().offset, 0u);
  for (std::size_t i = 0; i + 1 < plan.regions.size(); ++i) {
    EXPECT_EQ(plan.regions[i].end, plan.regions[i + 1].offset);
  }
}

TEST(Planner, MergeCollapsesEqualNeighbours) {
  // A uniform trace that Algorithm 1 may or may not split: after merging,
  // equal stripe pairs always collapse to one region.
  std::vector<trace::TraceRecord> records;
  for (int i = 0; i < 200; ++i) {
    trace::TraceRecord r;
    r.op = IoOp::kWrite;
    r.offset = static_cast<Bytes>(i) * 512 * KiB;
    r.size = 512 * KiB;
    records.push_back(r);
  }
  const auto plan = analyze(records, calibrated_params());
  EXPECT_EQ(plan.rst.size(), 1u);
  EXPECT_LE(plan.regions_after_merge, plan.regions_before_merge);
}

TEST(Planner, FileLevelAblationHasExactlyOneRegion) {
  const auto plan = analyze_file_level(two_phase_trace(), calibrated_params());
  EXPECT_EQ(plan.regions.size(), 1u);
  EXPECT_EQ(plan.rst.size(), 1u);
  EXPECT_EQ(plan.regions[0].request_count, 128u);
}

TEST(Planner, RegionLevelBeatsFileLevelOnNonUniformTraces) {
  // The core claim of the paper: per-region stripes fit per-region workloads
  // better than one file-level pair.  Compare summed model costs.
  const auto records = two_phase_trace();
  const CostParams params = calibrated_params();
  const auto region_plan = analyze(records, params);
  const auto file_plan = analyze_file_level(records, params);
  EXPECT_LE(region_plan.total_model_cost(), file_plan.total_model_cost() + 1e-12);
}

TEST(Planner, SegmentLevelUsesHomogeneousStripes) {
  const auto plan = analyze_segment_level(two_phase_trace(), calibrated_params());
  for (const auto& region : plan.regions) {
    EXPECT_EQ(region.stripes[0], region.stripes[1]);
  }
}

TEST(Planner, HeterogeneousBeatsSegmentLevelOnTheModel) {
  const auto records = two_phase_trace();
  const CostParams params = calibrated_params();
  const auto harl = analyze(records, params);
  const auto segment = analyze_segment_level(records, params);
  EXPECT_LE(harl.total_model_cost(), segment.total_model_cost() + 1e-12);
}

TEST(Planner, UnsortedInputIsSortedInternally) {
  auto records = two_phase_trace();
  std::reverse(records.begin(), records.end());
  const auto plan = analyze(records, calibrated_params());
  EXPECT_EQ(plan.regions.front().offset, 0u);
}

TEST(Planner, EmptyTraceThrows) {
  EXPECT_THROW(analyze({}, calibrated_params()), std::invalid_argument);
  EXPECT_THROW(analyze_file_level({}, calibrated_params()),
               std::invalid_argument);
  EXPECT_THROW(analyze_segment_level({}, calibrated_params()),
               std::invalid_argument);
}

TEST(Planner, RstMatchesRegionStripesBeforeMerge) {
  PlannerOptions opts;
  opts.merge_adjacent = false;
  const auto plan = analyze(two_phase_trace(), calibrated_params(), opts);
  ASSERT_EQ(plan.rst.size(), plan.regions.size());
  for (std::size_t i = 0; i < plan.regions.size(); ++i) {
    EXPECT_EQ(plan.rst.entry(i).offset, plan.regions[i].offset);
    EXPECT_EQ(plan.rst.entry(i).stripes, plan.regions[i].stripes);
  }
}

}  // namespace
}  // namespace harl::core
