// Property tests for the completed Fig. 4/5 closed forms: for every case
// (a)-(d), the O(1) geometry must equal the exact O(M+N) computation on
// randomized request sweeps, including all alignment corners.
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "src/common/rng.hpp"
#include "src/core/closed_form.hpp"

namespace harl::core {
namespace {

TEST(ClassifyFig4, MatchesBeginAndEndAreas) {
  const StripePair hs{64 * KiB, 128 * KiB};
  const std::size_t M = 6;
  const std::size_t N = 2;
  const Bytes Mh = M * hs.h;  // 384K; period 640K

  // Begins and ends inside the H area of period 0.
  EXPECT_EQ(classify_fig4(0, 128 * KiB, hs, M, N), Fig4Case::kA);
  // Begins in H, ends in S (inclusive end lands past Mh).
  EXPECT_EQ(classify_fig4(0, Mh + 64 * KiB, hs, M, N), Fig4Case::kB);
  // Begins in S, wraps, ends in H of the next period.
  EXPECT_EQ(classify_fig4(Mh, 512 * KiB, hs, M, N), Fig4Case::kC);
  // Begins and ends in S.
  EXPECT_EQ(classify_fig4(Mh, 128 * KiB, hs, M, N), Fig4Case::kD);
}

TEST(ClassifyFig4, ValidatesInputs) {
  EXPECT_THROW(classify_fig4(0, 0, {64 * KiB, 64 * KiB}, 6, 2),
               std::invalid_argument);
  EXPECT_THROW(classify_fig4(0, 1, {0, 64 * KiB}, 6, 2), std::invalid_argument);
  EXPECT_THROW(classify_fig4(0, 1, {64 * KiB, 64 * KiB}, 0, 2),
               std::invalid_argument);
}

TEST(ClosedForm, HandPickedCorners) {
  const StripePair hs{100, 300};
  const std::size_t M = 3;
  const std::size_t N = 2;
  // Period 900, H area [0, 300), S area [300, 900).

  // Whole request inside one HServer stripe.
  EXPECT_EQ(closed_form_geometry(10, 50, hs, M, N),
            request_geometry(10, 50, hs, M, N));
  // Exactly one full period.
  EXPECT_EQ(closed_form_geometry(0, 900, hs, M, N),
            request_geometry(0, 900, hs, M, N));
  // Stripe-aligned end (the corner the printed case-(a) table mishandles).
  EXPECT_EQ(closed_form_geometry(0, 200, hs, M, N),
            request_geometry(0, 200, hs, M, N));
  // Period-aligned end.
  EXPECT_EQ(closed_form_geometry(450, 450, hs, M, N),
            request_geometry(450, 450, hs, M, N));
  // Backwards wrap (begin column after end column).
  EXPECT_EQ(closed_form_geometry(250, 800, hs, M, N),
            request_geometry(250, 800, hs, M, N));
  // S-only span inside one period.
  EXPECT_EQ(closed_form_geometry(300, 600, hs, M, N),
            request_geometry(300, 600, hs, M, N));
}

struct ClosedFormCase {
  std::size_t M;
  std::size_t N;
  Bytes h;
  Bytes s;
};

class ClosedFormMatchesExact : public ::testing::TestWithParam<ClosedFormCase> {};

TEST_P(ClosedFormMatchesExact, OnRandomRequestsOfEveryCase) {
  const ClosedFormCase c = GetParam();
  const StripePair hs{c.h, c.s};
  const Bytes S = c.M * c.h + c.N * c.s;
  Rng rng(c.M * 31 + c.N * 17 + c.h * 3 + c.s);

  std::map<Fig4Case, int> case_counts;
  for (int i = 0; i < 2000; ++i) {
    const Bytes offset = rng.uniform_u64(0, 6 * S);
    const Bytes size = rng.uniform_u64(1, 4 * S);
    const auto closed = closed_form_geometry(offset, size, hs, c.M, c.N);
    const auto exact = request_geometry(offset, size, hs, c.M, c.N);
    ASSERT_EQ(closed, exact)
        << "o=" << offset << " r=" << size << " M=" << c.M << " N=" << c.N
        << " h=" << c.h << " s=" << c.s;
    ++case_counts[classify_fig4(offset, size, hs, c.M, c.N)];
  }
  // The sweep must exercise multiple Fig. 4 cases (extreme tier-size
  // ratios make some begin/end areas vanishingly small, so not every
  // parameterization can hit all four).
  EXPECT_GE(case_counts.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosedFormMatchesExact,
    ::testing::Values(ClosedFormCase{6, 2, 64 * KiB, 64 * KiB},
                      ClosedFormCase{6, 2, 32 * KiB, 160 * KiB},
                      ClosedFormCase{2, 6, 4 * KiB, 512 * KiB},
                      ClosedFormCase{1, 1, 3, 7},
                      ClosedFormCase{3, 3, 17, 23},
                      ClosedFormCase{7, 1, 128 * KiB, 1 * MiB},
                      ClosedFormCase{1, 7, 5, 1000}));

TEST(ClosedForm, AlignedBoundariesSweep) {
  // Deterministic sweep of every (offset, size) on a small grid: catches
  // boundary arithmetic that random sampling might miss.
  const StripePair hs{4, 6};
  const std::size_t M = 2;
  const std::size_t N = 2;
  const Bytes S = 2 * 4 + 2 * 6;  // 20
  for (Bytes offset = 0; offset < 2 * S; ++offset) {
    for (Bytes size = 1; size <= 3 * S; ++size) {
      ASSERT_EQ(closed_form_geometry(offset, size, hs, M, N),
                request_geometry(offset, size, hs, M, N))
          << "o=" << offset << " r=" << size;
    }
  }
}

}  // namespace
}  // namespace harl::core
