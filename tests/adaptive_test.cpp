// Epoch-versioned adaptive layout: EpochedLayout ownership semantics, the
// AdaptiveLayoutManager + MigrationEngine end to end on a drifting workload,
// and the Plan-artifact round trip of the latest epoch.
//
// The end-to-end pins are the PR's acceptance bar: on a drift workload whose
// offline plan is *stale* (traced from phase 0 only), harl-adaptive must beat
// static HARL even though migration traffic runs through the same simulated
// servers and is charged to the makespan — and it must LOSE that advantage
// when min_gain gating suppresses the swaps or the migration throttle makes
// re-layout unprofitable.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/core/plan_artifact.hpp"
#include "src/harness/experiment.hpp"
#include "src/middleware/adaptive.hpp"
#include "src/middleware/mpi_world.hpp"
#include "src/obs/metrics.hpp"
#include "src/pfs/epoch_layout.hpp"
#include "src/trace/collector.hpp"

namespace harl {
namespace {

using core::RegionStripeTable;
using pfs::EpochedLayout;
using pfs::SubRequest;

// --- EpochedLayout ----------------------------------------------------------

std::shared_ptr<pfs::RegionLayout> two_region_layout(Bytes boundary,
                                                     Bytes h0, Bytes s0,
                                                     Bytes h1, Bytes s1) {
  RegionStripeTable rst;
  rst.add(0, {h0, s0});
  rst.add(boundary, {h1, s1});
  return rst.to_layout(2, 2);
}

TEST(EpochedLayout, EpochZeroResolvesLikeItsRegionLayout) {
  auto base = two_region_layout(1 * MiB, 64 * KiB, 64 * KiB, 0, 128 * KiB);
  EpochedLayout epoched(base);

  EXPECT_EQ(epoched.epoch_count(), 1u);
  EXPECT_EQ(epoched.server_count(), base->server_count());
  EXPECT_EQ(epoched.owner_of(0), 0u);
  EXPECT_EQ(epoched.owner_of(100 * GiB), 0u);

  // Same sub-requests as the raw layout: epoch 0's object partition starts
  // at 0, so object ids are untouched.
  const auto want = base->map(512 * KiB, 1 * MiB);
  const auto got = epoched.map(512 * KiB, 1 * MiB);
  EXPECT_EQ(got, want);
}

TEST(EpochedLayout, AssignSplitsResolutionAtOwnershipBoundaries) {
  auto e0 = two_region_layout(1 * MiB, 64 * KiB, 64 * KiB, 64 * KiB, 64 * KiB);
  auto e1 = two_region_layout(1 * MiB, 0, 128 * KiB, 0, 128 * KiB);
  EpochedLayout epoched(e0);
  ASSERT_EQ(epoched.add_epoch(e1), 1u);

  epoched.assign(256 * KiB, 512 * KiB, 1);
  EXPECT_EQ(epoched.owner_of(256 * KiB - 1), 0u);
  EXPECT_EQ(epoched.owner_of(256 * KiB), 1u);
  EXPECT_EQ(epoched.owner_of(512 * KiB - 1), 1u);
  EXPECT_EQ(epoched.owner_of(512 * KiB), 0u);
  EXPECT_EQ(epoched.owner_end(256 * KiB), 512 * KiB);
  EXPECT_EQ(epoched.owners().size(), 3u);

  // A request spanning all three runs resolves each byte against its owner:
  // the middle part must carry epoch-1 object ids, the rest epoch 0's.
  const auto subs = epoched.map(0, 1 * MiB);
  Bytes bytes_by_epoch[2] = {0, 0};
  for (const SubRequest& sub : subs) {
    bytes_by_epoch[sub.object / EpochedLayout::kObjectsPerEpoch] += sub.size;
  }
  EXPECT_EQ(bytes_by_epoch[0], 768 * KiB);
  EXPECT_EQ(bytes_by_epoch[1], 256 * KiB);
}

TEST(EpochedLayout, AssignCoalescesAdjacentSameEpochRuns) {
  auto e0 = two_region_layout(1 * MiB, 64 * KiB, 64 * KiB, 64 * KiB, 64 * KiB);
  auto e1 = two_region_layout(1 * MiB, 0, 128 * KiB, 0, 128 * KiB);
  EpochedLayout epoched(e0);
  epoched.add_epoch(e1);

  epoched.assign(0, 256 * KiB, 1);
  epoched.assign(256 * KiB, 512 * KiB, 1);  // adjacent: must coalesce
  const auto owners = epoched.owners();
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_EQ(owners[0], (std::pair<Bytes, std::uint32_t>{0, 1}));
  EXPECT_EQ(owners[1], (std::pair<Bytes, std::uint32_t>{512 * KiB, 0}));

  // Migrating everything back to epoch 0 restores a single run.
  epoched.assign(0, 100 * GiB, 0);
  EXPECT_EQ(epoched.owners().size(), 1u);
  EXPECT_EQ(epoched.owner_of(0), 0u);
}

TEST(EpochedLayout, EpochViewRebasesObjectsIgnoringOwnership) {
  auto e0 = two_region_layout(1 * MiB, 64 * KiB, 64 * KiB, 64 * KiB, 64 * KiB);
  auto e1 = two_region_layout(1 * MiB, 0, 128 * KiB, 0, 128 * KiB);
  EpochedLayout epoched(e0);
  epoched.add_epoch(e1);

  // Ownership still belongs to epoch 0 everywhere, but the view addresses
  // epoch 1's objects — what the migration engine writes before flipping.
  const auto view = epoched.epoch_view(1);
  for (const SubRequest& sub : view->map(0, 2 * MiB)) {
    EXPECT_GE(sub.object, EpochedLayout::kObjectsPerEpoch);
    EXPECT_LT(sub.object, 2 * EpochedLayout::kObjectsPerEpoch);
  }
  for (const SubRequest& sub : epoched.map(0, 2 * MiB)) {
    EXPECT_LT(sub.object, EpochedLayout::kObjectsPerEpoch);
  }
}

TEST(EpochedLayout, EffectiveRegionCountFollowsOwnership) {
  auto e0 = two_region_layout(1 * MiB, 64 * KiB, 64 * KiB, 0, 128 * KiB);
  auto e1 = two_region_layout(2 * MiB, 0, 128 * KiB, 32 * KiB, 96 * KiB);
  EpochedLayout epoched(e0);
  EXPECT_EQ(epoched.effective_region_count(), 2u);  // epoch 0's two regions

  epoched.add_epoch(e1);
  // [0, 512K) flips to epoch 1 (within e1's first region): the map is now
  // e1-region-0 + the tail of e0-region-0 + e0-region-1.
  epoched.assign(0, 512 * KiB, 1);
  EXPECT_EQ(epoched.effective_region_count(), 3u);
}

TEST(EpochedLayout, AddEpochValidatesShape) {
  auto e0 = two_region_layout(1 * MiB, 64 * KiB, 64 * KiB, 0, 128 * KiB);
  EpochedLayout epoched(e0);

  RegionStripeTable other_shape;
  other_shape.add(0, {64 * KiB, 64 * KiB});
  EXPECT_THROW(epoched.add_epoch(other_shape.to_layout(3, 1)),
               std::invalid_argument);
  EXPECT_THROW(epoched.add_epoch(nullptr), std::invalid_argument);
  EXPECT_THROW(epoched.assign(0, 1 * KiB, 7), std::invalid_argument);
}

// --- end-to-end: adaptive vs stale static on a drifting workload ------------

/// Single-region drift workload: phase 0 writes 2 MiB requests (the stale
/// plan's world); the steep drift factor clamps every later phase to the
/// 4 KiB request floor — one drift step, then a stable small-request regime
/// where the optimal layout flips to SServer-only striping (paper Fig. 9).
/// Sequential slots keep each rank's touched extent compact so migration has
/// a meaningful, bounded amount of data to move.
workloads::MultiRegionConfig drift_config(std::size_t phases) {
  workloads::MultiRegionConfig mr;
  mr.regions = {{256 * MiB, 2 * MiB}};
  mr.processes = 4;
  mr.coverage = 0.25;
  mr.random_offsets = false;
  mr.drift_phases = phases;
  mr.drift_factor = 1.0 / 512.0;
  return mr;
}

harness::ExperimentOptions adaptive_options() {
  harness::ExperimentOptions options;
  options.cluster.num_hservers = 4;
  options.cluster.num_sservers = 2;
  options.cluster.num_clients = 4;
  options.calibration.samples_per_size = 100;
  options.calibration.beta_samples = 100;
  options.adaptive.advisor.window = 256;
  options.adaptive.advisor.min_gain = 0.10;
  options.adaptive.migrate_bandwidth = 1.0 * GiB;
  // One live swap: without a budget the advisor re-swaps every window the
  // read/write mix flips, and repeated migration of the same extent drowns
  // the gain.  A small epoch budget is the realistic deployment choice.
  options.adaptive.max_epochs = 2;
  return options;
}

/// First-execution trace of the *phase-0-only* workload: the offline plan
/// built from it is exactly right for phase 0 and stale for the rest.
std::vector<trace::TraceRecord> stale_trace(
    const harness::ExperimentOptions& options,
    const harness::WorkloadBundle& phase0) {
  sim::Simulator sim;
  pfs::Cluster cluster(sim, options.cluster);
  mw::MpiWorld world(cluster, phase0.processes);
  trace::TraceCollector collector;
  auto layout =
      pfs::make_fixed_layout(cluster.num_servers(), options.tracing_stripe);
  mw::ProgramRunner runner(world, phase0.name, layout, &collector,
                           options.collective);
  if (!phase0.write_programs.empty()) runner.run(phase0.write_programs);
  if (!phase0.read_programs.empty()) runner.run(phase0.read_programs);
  return collector.sorted_by_offset();
}

struct DriftRuns {
  harness::SchemeResult static_harl;
  harness::SchemeResult adaptive;
};

DriftRuns run_drift(const harness::ExperimentOptions& options,
                    std::size_t phases = 3) {
  harness::Experiment experiment(options);
  const auto bundle = harness::multiregion_bundle(drift_config(phases));
  const auto trace0 =
      stale_trace(options, harness::multiregion_bundle(drift_config(1)));
  DriftRuns runs;
  runs.static_harl = experiment.run_with_trace(
      bundle, harness::LayoutScheme::harl(), trace0);
  runs.adaptive = experiment.run_with_trace(
      bundle, harness::LayoutScheme::harl_adaptive(), trace0);
  return runs;
}

TEST(AdaptiveExperiment, BeatsStaleStaticPlanWithMigrationCharged) {
  // Six phases: the one migration (~192 MiB through the live servers) is paid
  // early in phase 1, and the five post-drift phases amortize it.  With only
  // three phases the same migration still outweighs its savings — adaptation
  // has a break-even horizon, which is exactly the point of charging it.
  const DriftRuns runs = run_drift(adaptive_options(), 6);

  ASSERT_TRUE(runs.adaptive.adaptive.has_value());
  const auto& a = *runs.adaptive.adaptive;
  EXPECT_GE(a.epochs_installed, 1u);
  EXPECT_GT(a.migrated_bytes, 0u);
  EXPECT_GT(a.migration_chunks, 0u);
  EXPECT_GT(a.migration_interference, 0.0);
  EXPECT_GE(a.recommendations, a.epochs_installed);
  EXPECT_GT(a.cost_evals, 0u);

  // The bar: total completion time, with every migration chunk's server and
  // network time inside the measured makespan.
  EXPECT_LT(runs.adaptive.total.makespan, runs.static_harl.total.makespan)
      << "adaptive " << runs.adaptive.total.makespan << "s vs static "
      << runs.static_harl.total.makespan << "s";
}

TEST(AdaptiveExperiment, MinGainGateSuppressesUnprofitableMigration) {
  harness::ExperimentOptions options = adaptive_options();
  options.adaptive.advisor.min_gain = 0.95;  // practically unreachable
  const DriftRuns runs = run_drift(options);

  ASSERT_TRUE(runs.adaptive.adaptive.has_value());
  const auto& a = *runs.adaptive.adaptive;
  EXPECT_EQ(a.epochs_installed, 0u);
  EXPECT_EQ(a.migrated_bytes, 0u);
  EXPECT_GT(a.windows_analyzed, 0u);

  // With every swap gated off, the epoched facade is pure pass-through over
  // the same epoch-0 plan: the runs are the same simulation.
  EXPECT_DOUBLE_EQ(runs.adaptive.total.makespan,
                   runs.static_harl.total.makespan);
}

TEST(AdaptiveExperiment, ThrottledMigrationMakesAdaptationLose) {
  // Migration is real work: squeeze the throttle to a trickle and the
  // adopted re-layouts cost more than they save — adaptive must LOSE to the
  // stale static plan, proving the cost is charged, not modeled away.
  harness::ExperimentOptions options = adaptive_options();
  options.adaptive.migrate_bandwidth = 2.0 * MiB;
  const DriftRuns runs = run_drift(options);

  ASSERT_TRUE(runs.adaptive.adaptive.has_value());
  ASSERT_GE(runs.adaptive.adaptive->epochs_installed, 1u);
  EXPECT_GT(runs.adaptive.total.makespan, runs.static_harl.total.makespan)
      << "adaptive " << runs.adaptive.total.makespan << "s vs static "
      << runs.static_harl.total.makespan << "s";
}

TEST(AdaptiveExperiment, PlanArtifactRoundTripsTheLatestEpoch) {
  const DriftRuns runs = run_drift(adaptive_options());
  ASSERT_TRUE(runs.adaptive.plan.has_value());
  ASSERT_GE(runs.adaptive.adaptive->epochs_installed, 1u);

  // The adaptive result's plan is the *latest* epoch, not epoch 0.
  const core::Plan& plan = *runs.adaptive.plan;
  EXPECT_NE(plan.rst.entries(), runs.static_harl.plan->rst.entries());

  std::stringstream buffer;
  core::save_plan_binary(core::PlanArtifact::from_plan(plan), buffer);
  const core::PlanArtifact loaded = core::load_plan_binary(buffer);
  EXPECT_EQ(loaded.rst.entries(), plan.rst.entries());
  EXPECT_EQ(loaded.tier_counts, plan.tier_counts);
  EXPECT_EQ(loaded.calibration_fingerprint, plan.calibration_fingerprint);
}

TEST(AdaptiveExperiment, MigrationMetricsMergeOrderIndependently) {
  // The manager's adaptive/migration families are all counters, so merging
  // them into a recorder registry must commute — per-scheme registries can
  // land in any order without changing the report.
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  for (obs::MetricsRegistry* reg : {&a, &b}) {
    const auto bytes_id = reg->family("migration.migrated_bytes",
                                      obs::MetricsRegistry::Kind::kCounter);
    const auto intf_id = reg->family("migration.interference_s",
                                     obs::MetricsRegistry::Kind::kCounter);
    const double scale = reg == &a ? 1.0 : 3.0;
    reg->add(bytes_id, obs::LabelSet{}.region(1), 4096.0 * scale);
    reg->add(bytes_id, obs::LabelSet{}.region(2), 8192.0 * scale);
    reg->add(intf_id, obs::LabelSet{}.region(1), 0.25 * scale);
  }

  obs::MetricsRegistry ab;
  ab.merge(a);
  ab.merge(b);
  obs::MetricsRegistry ba;
  ba.merge(b);
  ba.merge(a);

  std::ostringstream ab_json;
  std::ostringstream ba_json;
  ab.write_json(ab_json, 0);
  ba.write_json(ba_json, 0);
  EXPECT_EQ(ab_json.str(), ba_json.str());
}

}  // namespace
}  // namespace harl
