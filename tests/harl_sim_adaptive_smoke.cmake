# CTest script: adaptive re-layout smoke through the real harl_sim binary.
# A drifting multiregion run with adapt=1 must append the HARL-adaptive
# scheme, print the "adaptive re-layout" summary table, and export the
# adaptive.*/migration.* counter families — which tools/obs_report.py --check
# --require-adaptive then validates for internal consistency (epochs vs
# recommendations vs windows, migration traffic matching installed epochs,
# non-negative interference).  Python validation is skipped with a notice
# when no python3 is on PATH.
if(NOT DEFINED HARL_SIM OR NOT DEFINED WORK_DIR OR NOT DEFINED OBS_REPORT)
  message(FATAL_ERROR
          "pass -DHARL_SIM=<binary> -DWORK_DIR=<dir> -DOBS_REPORT=<script>")
endif()

set(metrics_file ${WORK_DIR}/adaptive_smoke_metrics.json)
file(REMOVE ${metrics_file})

execute_process(
  COMMAND ${HARL_SIM} workload=multiregion procs=4 coverage=0.05 drift=2
          drift-factor=0.125 schemes=harl adapt=1 adapt-window=256
          metrics-out=${metrics_file}
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "adaptive run failed (${run_rc}): ${run_err}")
endif()

if(NOT run_out MATCHES "HARL-adaptive")
  message(FATAL_ERROR "adapt=1 did not add the adaptive scheme:\n${run_out}")
endif()
if(NOT run_out MATCHES "adaptive re-layout")
  message(FATAL_ERROR "missing adaptive summary table:\n${run_out}")
endif()

if(NOT EXISTS ${metrics_file})
  message(FATAL_ERROR "run did not write ${metrics_file}")
endif()
file(READ ${metrics_file} metrics_json)
foreach(family IN ITEMS "adaptive.windows" "adaptive.epoch_installs"
        "migration.migrated_bytes")
  if(NOT metrics_json MATCHES "${family}")
    message(FATAL_ERROR "metrics missing ${family} family")
  endif()
endforeach()

find_program(PYTHON3 NAMES python3 python)
if(NOT PYTHON3)
  message(STATUS "python3 not found; family presence checked only")
  return()
endif()

execute_process(
  COMMAND ${PYTHON3} ${OBS_REPORT} ${metrics_file} --check --require-adaptive
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "obs_report.py --check --require-adaptive failed "
                      "(${check_rc}):\n${check_out}${check_err}")
endif()
message(STATUS "adaptive smoke ok: ${check_out}")
