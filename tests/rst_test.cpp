// Tests for the Region Stripe Table (paper Fig. 6).
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/rst.hpp"

namespace harl::core {
namespace {

RegionStripeTable paper_fig6_table() {
  // The example table from paper Fig. 6.
  RegionStripeTable rst;
  rst.add(0, {16 * KiB, 64 * KiB});
  rst.add(128 * MiB, {36 * KiB, 144 * KiB});
  rst.add(192 * MiB, {26 * KiB, 80 * KiB});
  return rst;
}

TEST(Rst, LookupFindsGoverningRegion) {
  const auto rst = paper_fig6_table();
  EXPECT_EQ(rst.lookup(0).pair(), (StripePair{16 * KiB, 64 * KiB}));
  EXPECT_EQ(rst.lookup(128 * MiB - 1).pair(), (StripePair{16 * KiB, 64 * KiB}));
  EXPECT_EQ(rst.lookup(128 * MiB).pair(), (StripePair{36 * KiB, 144 * KiB}));
  EXPECT_EQ(rst.lookup(500 * MiB).pair(), (StripePair{26 * KiB, 80 * KiB}));
  EXPECT_EQ(rst.region_of(150 * MiB), 1u);
}

TEST(Rst, AddValidatesOrdering) {
  RegionStripeTable rst;
  EXPECT_THROW(rst.add(10, {4 * KiB, 8 * KiB}), std::invalid_argument);
  rst.add(0, {4 * KiB, 8 * KiB});
  EXPECT_THROW(rst.add(0, {4 * KiB, 8 * KiB}), std::invalid_argument);
  EXPECT_THROW(rst.add(100, {0, 0}), std::invalid_argument);
  rst.add(100, {8 * KiB, 16 * KiB});
  EXPECT_EQ(rst.size(), 2u);
}

TEST(Rst, LookupOnEmptyTableThrows) {
  RegionStripeTable rst;
  EXPECT_THROW(rst.lookup(0), std::logic_error);
}

TEST(Rst, MergeAdjacentCombinesEqualStripePairs) {
  RegionStripeTable rst;
  rst.add(0, {16 * KiB, 64 * KiB});
  rst.add(64 * MiB, {16 * KiB, 64 * KiB});   // same as previous -> merge
  rst.add(128 * MiB, {36 * KiB, 144 * KiB});
  rst.add(160 * MiB, {36 * KiB, 144 * KiB});  // same -> merge
  rst.add(192 * MiB, {16 * KiB, 64 * KiB});   // different from neighbour: keep
  const std::size_t removed = rst.merge_adjacent();
  EXPECT_EQ(removed, 2u);
  ASSERT_EQ(rst.size(), 3u);
  EXPECT_EQ(rst.entry(0).offset, 0u);
  EXPECT_EQ(rst.entry(1).offset, 128 * MiB);
  EXPECT_EQ(rst.entry(2).offset, 192 * MiB);
  // Lookups in the merged range still resolve correctly.
  EXPECT_EQ(rst.lookup(100 * MiB).pair(), (StripePair{16 * KiB, 64 * KiB}));
}

TEST(Rst, MergeOnUniformTableLeavesOne) {
  RegionStripeTable rst;
  for (int i = 0; i < 5; ++i) {
    rst.add(static_cast<Bytes>(i) * MiB, {8 * KiB, 32 * KiB});
  }
  EXPECT_EQ(rst.merge_adjacent(), 4u);
  EXPECT_EQ(rst.size(), 1u);
}

TEST(Rst, SaveLoadRoundTrips) {
  const auto rst = paper_fig6_table();
  std::stringstream ss;
  rst.save(ss);
  const auto loaded = RegionStripeTable::load(ss);
  ASSERT_EQ(loaded.size(), rst.size());
  for (std::size_t i = 0; i < rst.size(); ++i) {
    EXPECT_EQ(loaded.entry(i), rst.entry(i));
  }
}

TEST(Rst, LoadRejectsBadInput) {
  {
    std::stringstream ss("wrong-header\n0 1 2\n");
    EXPECT_THROW(RegionStripeTable::load(ss), std::runtime_error);
  }
  {
    std::stringstream ss("harl-rst-v1\n0 garbage\n");
    EXPECT_THROW(RegionStripeTable::load(ss), std::runtime_error);
  }
}

// ------------------------------------------------ k-tier entries (v2) ----

TEST(Rst, TwoTierTablesSaveInLegacyV1Format) {
  // Byte compatibility: k = 2 tables keep emitting the original v1 header
  // and row shape, so pre-existing saved tables and new ones interoperate.
  const auto rst = paper_fig6_table();
  std::stringstream ss;
  rst.save(ss);
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header, "harl-rst-v1");
}

TEST(Rst, KTierTablesRoundTripInV2Format) {
  RegionStripeTable rst;
  rst.add(0, {16 * KiB, 64 * KiB, 128 * KiB});
  rst.add(64 * MiB, {0, 32 * KiB, 256 * KiB});
  EXPECT_EQ(rst.num_tiers(), 3u);
  std::stringstream ss;
  rst.save(ss);
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header, "harl-rst-v2");
  ss.seekg(0);
  const auto loaded = RegionStripeTable::load(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.entry(0).stripes,
            (std::vector<Bytes>{16 * KiB, 64 * KiB, 128 * KiB}));
  EXPECT_EQ(loaded.entry(1).stripes,
            (std::vector<Bytes>{0, 32 * KiB, 256 * KiB}));
}

TEST(Rst, V1RowsMustBeTwoTier) {
  // The legacy header promises exactly two stripe columns per row.
  std::stringstream ss("harl-rst-v1\n0 16384 65536 131072\n");
  EXPECT_THROW(RegionStripeTable::load(ss), std::runtime_error);
}

TEST(Rst, AddRejectsInconsistentTierCounts) {
  RegionStripeTable rst;
  rst.add(0, {16 * KiB, 64 * KiB});
  EXPECT_THROW(rst.add(64 * MiB, {16 * KiB, 64 * KiB, 128 * KiB}),
               std::invalid_argument);
  EXPECT_THROW(rst.add(64 * MiB, std::vector<Bytes>{}),
               std::invalid_argument);
}

TEST(Rst, PairAccessorRequiresTwoTiers) {
  RegionStripeTable rst;
  rst.add(0, {16 * KiB, 64 * KiB, 128 * KiB});
  EXPECT_THROW(rst.entry(0).pair(), std::logic_error);
}

TEST(Rst, ToLayoutAcceptsTierCountVector) {
  RegionStripeTable rst;
  rst.add(0, {16 * KiB, 64 * KiB, 128 * KiB});
  const std::size_t counts[] = {4, 2, 2};
  const auto layout = rst.to_layout(counts);
  EXPECT_EQ(layout->server_count(), 8u);
  // Mismatched tier-count shape is rejected.
  const std::size_t wrong[] = {6, 2};
  EXPECT_THROW(rst.to_layout(wrong), std::invalid_argument);
}

TEST(Rst, ToLayoutBuildsMatchingRegionLayout) {
  const auto rst = paper_fig6_table();
  const auto layout = rst.to_layout(6, 2);
  ASSERT_EQ(layout->region_count(), 3u);
  EXPECT_EQ(layout->region(1).offset, 128 * MiB);
  EXPECT_EQ(layout->region(1).h(), 36 * KiB);
  EXPECT_EQ(layout->region(1).s(), 144 * KiB);
  EXPECT_EQ(layout->server_count(), 8u);
}

TEST(Rst, ToLayoutOnEmptyTableThrows) {
  RegionStripeTable rst;
  EXPECT_THROW(rst.to_layout(6, 2), std::logic_error);
}

}  // namespace
}  // namespace harl::core
