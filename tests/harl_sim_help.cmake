# CTest script: pins `harl_sim help` to the option table the binary actually
# parses.  usage() is generated from the same kOptions table validate_keys()
# enforces, so drift inside the binary is structurally impossible; this test
# guards the remaining seams: every documented key must appear in the help
# text as `key=`, and an unknown key must be rejected with a pointer to help
# rather than silently ignored (the pre-table behavior).
if(NOT DEFINED HARL_SIM)
  message(FATAL_ERROR "pass -DHARL_SIM=<harl_sim binary>")
endif()

execute_process(
  COMMAND ${HARL_SIM} help
  OUTPUT_VARIABLE help_out
  ERROR_VARIABLE help_err
  RESULT_VARIABLE help_rc)
if(NOT help_rc EQUAL 0)
  message(FATAL_ERROR "harl_sim help failed (${help_rc}): ${help_err}")
endif()

# Every key the binary parses, including the observability flags.  The
# usage table prints each key at the start of its own (indented) line.
set(known_keys
  workload procs request file requests coverage drift drift-factor
  zipf-theta zipf-reads zipf-phases grid dumps
  hservers sservers clients device-spread aging device-blind
  schemes adapt adapt-window adapt-min-gain
  migrate-bw cache-budget cache-devices cache-chunk cache-policy cache-blind
  seed threads sim-threads stats
  save-plan load-plan metrics-out trace-out trace-events
  timeseries-out timeseries-interval health slo-ms
  gc-pause-ms gc-period gc-factor gc-server
  files tenants zipf-tenant-theta replicas fail-server fail-at)
foreach(key IN LISTS known_keys)
  if(NOT help_out MATCHES "\n +${key} ")
    message(FATAL_ERROR "help output is missing documented key '${key}':\n"
                        "${help_out}")
  endif()
endforeach()

# Unknown keys must be an error that names the option and points at help.
execute_process(
  COMMAND ${HARL_SIM} workload=ior no-such-option=1
  OUTPUT_VARIABLE bogus_out
  ERROR_VARIABLE bogus_err
  RESULT_VARIABLE bogus_rc)
if(bogus_rc EQUAL 0)
  message(FATAL_ERROR "harl_sim accepted an unknown option")
endif()
if(NOT "${bogus_out}${bogus_err}" MATCHES "no-such-option")
  message(FATAL_ERROR "unknown-option error does not name the bad key:\n"
                      "${bogus_out}${bogus_err}")
endif()

# The rejection must list the valid keys so a typo like `cache-buget=` is a
# guided error, not a silent fall-through.  Every documented key must appear
# in the suggestion list.
execute_process(
  COMMAND ${HARL_SIM} workload=ior cache-buget=64M
  OUTPUT_VARIABLE typo_out
  ERROR_VARIABLE typo_err
  RESULT_VARIABLE typo_rc)
if(typo_rc EQUAL 0)
  message(FATAL_ERROR "harl_sim accepted the misspelled key 'cache-buget'")
endif()
set(typo_all "${typo_out}${typo_err}")
if(NOT typo_all MATCHES "valid keys")
  message(FATAL_ERROR "unknown-option error does not list valid keys:\n"
                      "${typo_all}")
endif()
foreach(key IN LISTS known_keys)
  if(NOT typo_all MATCHES "${key}")
    message(FATAL_ERROR "valid-keys list is missing '${key}':\n${typo_all}")
  endif()
endforeach()

list(LENGTH known_keys n_keys)
message(STATUS "help lists all ${n_keys} documented keys; unknown keys "
               "rejected")
