// Tests for the experiment harness: calibration, layout schemes, bundles,
// and table formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/plan_artifact.hpp"
#include "src/harness/calibration.hpp"
#include "src/harness/experiment.hpp"
#include "src/harness/scheme.hpp"
#include "src/harness/table.hpp"

namespace harl::harness {
namespace {

TEST(Calibration, FitsEffectiveParameters) {
  pfs::ClusterConfig cfg;
  CalibrationOptions opts;
  opts.samples_per_size = 500;
  opts.beta_samples = 500;
  const core::CostParams params = calibrate(cfg, opts);

  EXPECT_EQ(params.M, cfg.num_hservers);
  EXPECT_EQ(params.N, cfg.num_sservers);
  EXPECT_DOUBLE_EQ(params.t, cfg.network.per_byte);
  EXPECT_EQ(params.net_hops, 1);

  // Effective HDD rate includes positioning amortized over the reference
  // access size: strictly slower than the media rate.
  EXPECT_GT(params.hserver_read.per_byte, cfg.hdd.read.per_byte * 1.15);
  // Sequential-stream startup fit: far below the full positioning window.
  EXPECT_LT(params.hserver_read.startup_max, cfg.hdd.read.startup_max * 0.7);
  // SSD effective rate stays near its media rate (only its microsecond
  // startups amortize in, roughly doubling the 64 KiB unit time at most).
  EXPECT_LT(params.sserver_read.per_byte, cfg.ssd.read.per_byte * 2.0);
  // SSD writes remain slower than reads.
  EXPECT_GT(params.sserver_write.per_byte, params.sserver_read.per_byte);
}

TEST(Calibration, NominalModeCopiesProfiles) {
  pfs::ClusterConfig cfg;
  CalibrationOptions opts;
  opts.measure_devices = false;
  const core::CostParams params = calibrate(cfg, opts);
  EXPECT_DOUBLE_EQ(params.hserver_read.per_byte, cfg.hdd.read.per_byte);
  EXPECT_DOUBLE_EQ(params.hserver_read.startup_max, cfg.hdd.read.startup_max);
}

TEST(Calibration, TieredParamsMirrorTwoTier) {
  pfs::ClusterConfig cfg;
  CalibrationOptions opts;
  opts.samples_per_size = 300;
  opts.beta_samples = 300;
  const auto two = calibrate(cfg, opts);
  const auto tiered = calibrate_tiered(cfg, opts);
  ASSERT_EQ(tiered.tiers.size(), 2u);
  EXPECT_EQ(tiered.tiers[0].count, cfg.num_hservers);
  EXPECT_EQ(tiered.tiers[1].count, cfg.num_sservers);
  EXPECT_DOUBLE_EQ(tiered.tiers[0].profile.read.per_byte,
                   two.hserver_read.per_byte);
  EXPECT_DOUBLE_EQ(tiered.tiers[1].profile.write.per_byte,
                   two.sserver_write.per_byte);
}

TEST(Scheme, LabelsMatchFigureLegends) {
  EXPECT_EQ(LayoutScheme::fixed(64 * KiB).label(), "64K");
  EXPECT_EQ(LayoutScheme::fixed(2 * MiB).label(), "2M");
  EXPECT_EQ(LayoutScheme::random_stripes(2).label(), "rand2");
  EXPECT_EQ(LayoutScheme::harl().label(), "HARL");
  EXPECT_EQ(LayoutScheme::file_level_harl().label(), "HARL-file");
  EXPECT_EQ(LayoutScheme::segment_level().label(), "segment");
}

TEST(Scheme, OnlyAnalysisSchemesNeedTraces) {
  EXPECT_FALSE(LayoutScheme::fixed(64 * KiB).needs_analysis());
  EXPECT_FALSE(LayoutScheme::random_stripes(1).needs_analysis());
  EXPECT_TRUE(LayoutScheme::harl().needs_analysis());
  EXPECT_TRUE(LayoutScheme::file_level_harl().needs_analysis());
  EXPECT_TRUE(LayoutScheme::segment_level().needs_analysis());
}

TEST(Scheme, FixedLayoutBuildsWithoutTrace) {
  pfs::ClusterConfig cfg;
  const auto layout =
      build_layout(LayoutScheme::fixed(64 * KiB), cfg, {}, {}, {});
  EXPECT_EQ(layout->server_count(), 8u);
  EXPECT_EQ(layout->describe(), "8x64K");
}

TEST(Scheme, RandomLayoutIsSeededAndBounded) {
  pfs::ClusterConfig cfg;
  const auto a =
      build_layout(LayoutScheme::random_stripes(7), cfg, {}, {}, {});
  const auto b =
      build_layout(LayoutScheme::random_stripes(7), cfg, {}, {}, {});
  const auto c =
      build_layout(LayoutScheme::random_stripes(8), cfg, {}, {}, {});
  EXPECT_EQ(a->describe(), b->describe());
  EXPECT_NE(a->describe(), c->describe());
  const auto* varied = dynamic_cast<const pfs::VariedStripeLayout*>(a.get());
  ASSERT_NE(varied, nullptr);
  for (Bytes st : varied->stripes()) {
    EXPECT_GE(st, 16 * KiB);
    EXPECT_LE(st, 2 * MiB);
  }
}

TEST(Scheme, AnalysisSchemeWithoutTraceThrows) {
  pfs::ClusterConfig cfg;
  EXPECT_THROW(build_layout(LayoutScheme::harl(), cfg, {}, {}, {}),
               std::invalid_argument);
}

TEST(Bundles, IorBundleHasMatchingReadAndWritePasses) {
  workloads::IorConfig cfg;
  cfg.processes = 4;
  cfg.file_size = 32 * MiB;
  cfg.requests_per_process = 16;
  const auto bundle = ior_bundle(cfg);
  EXPECT_EQ(bundle.processes, 4u);
  ASSERT_EQ(bundle.write_programs.size(), 4u);
  ASSERT_EQ(bundle.read_programs.size(), 4u);
  EXPECT_TRUE(bundle.mixed_programs.empty());
  // Same offsets, opposite ops.
  for (std::size_t r = 0; r < 4; ++r) {
    ASSERT_EQ(bundle.write_programs[r].size(), bundle.read_programs[r].size());
    for (std::size_t i = 0; i < bundle.write_programs[r].size(); ++i) {
      EXPECT_EQ(bundle.write_programs[r][i].extents[0],
                bundle.read_programs[r][i].extents[0]);
      EXPECT_EQ(bundle.write_programs[r][i].op, IoOp::kWrite);
      EXPECT_EQ(bundle.read_programs[r][i].op, IoOp::kRead);
    }
  }
}

TEST(Bundles, BtioBundleIsMixed) {
  workloads::BtioConfig cfg;
  cfg.processes = 4;
  cfg.grid = 8;
  cfg.time_steps = 5;
  const auto bundle = btio_bundle(cfg);
  EXPECT_TRUE(bundle.write_programs.empty());
  EXPECT_TRUE(bundle.read_programs.empty());
  EXPECT_EQ(bundle.mixed_programs.size(), 4u);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"layout", "read MB/s"});
  t.add_row({"64K", "123.4"});
  t.add_row({"HARL", "456.7"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("layout  read MB/s"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_NE(out.find("HARL    456.7"), std::string::npos);
}

TEST(Table, RejectsMismatchedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableCells, FormatNumbersAndRatios) {
  EXPECT_EQ(cell(123.456, 1), "123.5");
  EXPECT_EQ(cell(2.0, 0), "2");
  EXPECT_EQ(cell_ratio(150.0, 100.0), "+50.0%");
  EXPECT_EQ(cell_ratio(73.4, 100.0), "-26.6%");
  EXPECT_EQ(cell_ratio(1.0, 0.0), "n/a");
}

TEST(Experiment, FixedSchemeSmokeRun) {
  ExperimentOptions opts;
  opts.cluster.num_clients = 4;
  opts.calibration.samples_per_size = 200;
  opts.calibration.beta_samples = 200;

  workloads::IorConfig ior;
  ior.processes = 4;
  ior.file_size = 64 * MiB;
  ior.request_size = 512 * KiB;
  ior.requests_per_process = 16;

  Experiment exp(opts);
  const auto result = exp.run(ior_bundle(ior), LayoutScheme::fixed(64 * KiB));
  EXPECT_EQ(result.label, "64K");
  EXPECT_EQ(result.write.bytes, 4u * 16u * 512 * KiB);
  EXPECT_EQ(result.read.bytes, 4u * 16u * 512 * KiB);
  EXPECT_GT(result.write.throughput(), 0.0);
  EXPECT_GT(result.read.throughput(), 0.0);
  EXPECT_EQ(result.server_io_time.size(), 8u);
  EXPECT_EQ(result.region_count, 1u);
  EXPECT_FALSE(result.plan.has_value());
}

TEST(Experiment, HarlSchemeProducesAPlan) {
  ExperimentOptions opts;
  opts.cluster.num_clients = 4;
  opts.calibration.samples_per_size = 200;
  opts.calibration.beta_samples = 200;

  workloads::IorConfig ior;
  ior.processes = 4;
  ior.file_size = 64 * MiB;
  ior.request_size = 512 * KiB;
  ior.requests_per_process = 16;

  Experiment exp(opts);
  const auto result = exp.run(ior_bundle(ior), LayoutScheme::harl());
  EXPECT_EQ(result.label, "HARL");
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_GE(result.region_count, 1u);
  EXPECT_GT(result.total.throughput(), 0.0);
}

TEST(Experiment, ObservedHarlRunExportsPlannerMetrics) {
  ExperimentOptions opts;
  opts.cluster.num_clients = 4;
  opts.calibration.samples_per_size = 200;
  opts.calibration.beta_samples = 200;
  opts.observe = true;

  workloads::IorConfig ior;
  ior.processes = 4;
  ior.file_size = 64 * MiB;
  ior.request_size = 512 * KiB;
  ior.requests_per_process = 16;

  Experiment exp(opts);
  const auto result = exp.run(ior_bundle(ior), LayoutScheme::harl());
  ASSERT_TRUE(result.obs);
  ASSERT_TRUE(result.plan.has_value());
  const obs::MetricsRegistry& m = result.obs->metrics();

  // The per-region Analysis Phase counters must sum to the Plan's own
  // aggregates: the registry mirrors the planner, it does not re-measure it.
  double evals = 0.0, saved = 0.0, candidates = 0.0;
  for (std::size_t i = 0; i < result.plan->regions.size(); ++i) {
    const auto labels = obs::LabelSet{}.region(static_cast<std::uint32_t>(i));
    evals += m.value("planner.region.cost_evals", labels);
    saved += m.value("planner.region.cost_evals_saved", labels);
    candidates += m.value("planner.region.candidates", labels);
  }
  EXPECT_EQ(evals, static_cast<double>(result.plan->total_cost_evals()));
  EXPECT_EQ(saved,
            static_cast<double>(result.plan->total_cost_evals_saved()));
  EXPECT_GT(candidates, 0.0);
  EXPECT_DOUBLE_EQ(m.value("planner.total_model_cost_s"),
                   result.plan->total_model_cost());
  EXPECT_EQ(m.value("planner.regions_after_merge"),
            static_cast<double>(result.plan->regions_after_merge));

  // The measured run landed in the same registry (per-server byte counters
  // from the PFS layer), so one JSON dump carries both sides.
  std::ostringstream json;
  m.write_json(json);
  EXPECT_NE(json.str().find("planner.region.cost_evals"), std::string::npos);
  EXPECT_NE(json.str().find("pfs.server.bytes"), std::string::npos);
}

TEST(Experiment, ResultsAreDeterministic) {
  ExperimentOptions opts;
  opts.cluster.num_clients = 4;
  opts.calibration.samples_per_size = 100;
  opts.calibration.beta_samples = 100;
  workloads::IorConfig ior;
  ior.processes = 4;
  ior.file_size = 32 * MiB;
  ior.requests_per_process = 8;

  Experiment exp(opts);
  const auto bundle = ior_bundle(ior);
  const auto a = exp.run(bundle, LayoutScheme::fixed(256 * KiB));
  const auto b = exp.run(bundle, LayoutScheme::fixed(256 * KiB));
  EXPECT_EQ(a.write.makespan, b.write.makespan);
  EXPECT_EQ(a.read.makespan, b.read.makespan);
}

TEST(Scheme, SpaceBoundedHarlCapsTheSsdShare) {
  ExperimentOptions opts;
  opts.cluster.num_clients = 4;
  opts.calibration.samples_per_size = 200;
  opts.calibration.beta_samples = 200;
  workloads::IorConfig ior;
  ior.processes = 4;
  ior.file_size = 128 * MiB;
  ior.requests_per_process = 24;

  Experiment exp(opts);
  const auto bundle = ior_bundle(ior);
  const auto free_harl = exp.run(bundle, LayoutScheme::harl());
  const auto bounded =
      exp.run(bundle, LayoutScheme::harl_space_bounded(0.35));
  EXPECT_EQ(bounded.label, "HARL<=35%ssd");
  ASSERT_TRUE(bounded.plan.has_value());
  for (const auto& region : bounded.plan->regions) {
    const double S = 6.0 * region.stripes[0] + 2.0 * region.stripes[1];
    EXPECT_LE(2.0 * region.stripes[1] / S, 0.35 + 1e-9);
  }
  // The unconstrained plan uses more SServer share (and no less model cost).
  EXPECT_LE(free_harl.plan->total_model_cost(),
            bounded.plan->total_model_cost() + 1e-12);
}

TEST(Experiment, ReplicatedRunsReportSeedSpread) {
  ExperimentOptions opts;
  opts.cluster.num_clients = 4;
  opts.calibration.samples_per_size = 100;
  opts.calibration.beta_samples = 100;
  workloads::IorConfig ior;
  ior.processes = 4;
  ior.file_size = 32 * MiB;
  ior.requests_per_process = 8;

  Experiment exp(opts);
  const auto rep =
      exp.run_replicated(ior_bundle(ior), LayoutScheme::fixed(256 * KiB), 3);
  ASSERT_EQ(rep.runs.size(), 3u);
  EXPECT_LE(rep.min_total, rep.mean_total);
  EXPECT_LE(rep.mean_total, rep.max_total);
  // Different device seeds produce (slightly) different makespans.
  EXPECT_NE(rep.runs[0].total.makespan, rep.runs[1].total.makespan);
  // The experiment's own options are restored afterwards.
  EXPECT_EQ(exp.options().cluster.seed, opts.cluster.seed);
  EXPECT_THROW(exp.run_replicated(ior_bundle(ior),
                                  LayoutScheme::fixed(64 * KiB), 0),
               std::invalid_argument);
}

TEST(Experiment, EmptyBundleThrows) {
  Experiment exp(ExperimentOptions{});
  WorkloadBundle empty;
  EXPECT_THROW(exp.run(empty, LayoutScheme::fixed(64 * KiB)),
               std::invalid_argument);
}

TEST(Scheme, LoadedPlanReproducesInProcessAnalysis) {
  // Placing Phase from the Plan artifact, as a separate process would run
  // it: the loaded scheme's simulated result must equal the in-process HARL
  // scheme's, makespan for makespan.
  ExperimentOptions opts;
  opts.cluster.num_clients = 4;
  opts.calibration.samples_per_size = 200;
  opts.calibration.beta_samples = 200;

  workloads::IorConfig ior;
  ior.processes = 4;
  ior.file_size = 64 * MiB;
  ior.request_size = 512 * KiB;
  ior.requests_per_process = 16;
  const auto bundle = ior_bundle(ior);

  Experiment exp(opts);
  const auto harl = exp.run(bundle, LayoutScheme::harl());
  ASSERT_TRUE(harl.plan.has_value());
  const std::string path = ::testing::TempDir() + "/harness_scheme.plan";
  core::save_plan(core::PlanArtifact::from_plan(*harl.plan), path);

  const auto scheme = LayoutScheme::from_plan_file(path);
  EXPECT_EQ(scheme.label(), "plan");
  EXPECT_FALSE(scheme.needs_analysis());
  EXPECT_TRUE(scheme.produces_plan());
  const auto loaded = exp.run(bundle, scheme);
  ASSERT_TRUE(loaded.plan.has_value());
  EXPECT_EQ(loaded.layout_description, harl.layout_description);
  EXPECT_EQ(loaded.total.makespan, harl.total.makespan);
  EXPECT_EQ(loaded.write.makespan, harl.write.makespan);
  EXPECT_EQ(loaded.read.makespan, harl.read.makespan);
  EXPECT_EQ(loaded.region_count, harl.region_count);
}

TEST(Scheme, LoadedPlanRejectsStaleCalibration) {
  // A plan computed against different calibrated parameters must be refused
  // at build time (the fingerprint check), not silently installed.
  ExperimentOptions opts;
  opts.cluster.num_clients = 4;
  opts.calibration.samples_per_size = 200;
  opts.calibration.beta_samples = 200;

  workloads::IorConfig ior;
  ior.processes = 4;
  ior.file_size = 64 * MiB;
  ior.request_size = 512 * KiB;
  ior.requests_per_process = 16;
  const auto bundle = ior_bundle(ior);

  Experiment exp(opts);
  const auto harl = exp.run(bundle, LayoutScheme::harl());
  ASSERT_TRUE(harl.plan.has_value());
  core::Plan stale = *harl.plan;
  stale.calibration_fingerprint ^= 1;  // simulate a recalibrated cluster
  const std::string path = ::testing::TempDir() + "/harness_stale.plan";
  core::save_plan(core::PlanArtifact::from_plan(stale), path);
  EXPECT_THROW(exp.run(bundle, LayoutScheme::from_plan_file(path)),
               std::runtime_error);
}

TEST(Scheme, FromPlanFileRejectsEmptyPath) {
  EXPECT_THROW(LayoutScheme::from_plan_file(""), std::invalid_argument);
}

}  // namespace
}  // namespace harl::harness
