// Tests for Algorithm 2: region stripe-size determination.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/stripe_optimizer.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {
namespace {

/// Calibrated-style parameters (sequential-fit alpha, effective beta) — what
/// harness::calibrate produces; see tests/cost_model_test.cpp for rationale.
CostParams calibrated_params(std::size_t M = 6, std::size_t N = 2) {
  CostParams p = make_cost_params(M, N, storage::hdd_profile(),
                                  storage::pcie_ssd_profile(),
                                  1.0 / (117.0 * 1024 * 1024));
  for (storage::OpProfile* prof : {&p.hserver_read, &p.hserver_write}) {
    prof->per_byte += prof->startup_mean() / static_cast<double>(64 * KiB);
    prof->startup_min *= 0.55;
    prof->startup_max *= 0.55;
  }
  return p;
}

std::vector<FileRequest> uniform_requests(Bytes size, std::size_t count,
                                          IoOp op = IoOp::kRead,
                                          std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<FileRequest> reqs;
  for (std::size_t i = 0; i < count; ++i) {
    reqs.push_back(FileRequest{op, rng.uniform_u64(0, 4096) * size, size});
  }
  return reqs;
}

TEST(Optimizer, PicksLargerSserverStripe) {
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(512 * KiB, 64);
  const auto result = optimize_region(p, reqs, 512.0 * KiB);
  // Heterogeneity-aware: SServers get strictly larger stripes (or all data).
  EXPECT_GT(result.stripes.s, result.stripes.h);
  EXPECT_GT(result.candidates_evaluated, 100u);
  EXPECT_GT(result.model_cost, 0.0);
}

TEST(Optimizer, HybridWinsForLargeRequests) {
  // Paper Fig. 7: at 512 KiB both tiers carry data ({32K, 160K}-shaped).
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(512 * KiB, 64);
  const auto result = optimize_region(p, reqs, 512.0 * KiB);
  EXPECT_GT(result.stripes.h, 0u);
  // The winning ratio is strongly SServer-biased (paper: 160/32 = 5).
  EXPECT_GE(result.stripes.s / std::max<Bytes>(result.stripes.h, 1), 2u);
}

TEST(Optimizer, SmallRequestsGoSsdOnly) {
  // Paper Fig. 9: at 128 KiB the optimal pair is {0K, 64K} — SServers only.
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(128 * KiB, 64);
  const auto result = optimize_region(p, reqs, 128.0 * KiB);
  EXPECT_EQ(result.stripes.h, 0u);
  EXPECT_GT(result.stripes.s, 0u);
}

TEST(Optimizer, ChosenPairBeatsEveryFixedStripeOnTheModel) {
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(512 * KiB, 48);
  const auto result = optimize_region(p, reqs, 512.0 * KiB);
  for (Bytes stripe = 4 * KiB; stripe <= 512 * KiB; stripe += 4 * KiB) {
    const Seconds fixed = region_cost(p, reqs, {stripe, stripe});
    EXPECT_LE(result.model_cost, fixed + 1e-12) << "stripe=" << stripe;
  }
}

TEST(Optimizer, HomogeneousSearchNeverBeatsFullSearch) {
  const CostParams p = calibrated_params();
  for (Bytes req : {128 * KiB, 512 * KiB, 1 * MiB}) {
    const auto reqs = uniform_requests(req, 32);
    const auto full = optimize_region(p, reqs, static_cast<double>(req));
    const auto homo =
        optimize_region_homogeneous(p, reqs, static_cast<double>(req));
    EXPECT_LE(full.model_cost, homo.model_cost + 1e-12) << "req=" << req;
    EXPECT_EQ(homo.stripes.h, homo.stripes.s);
  }
}

TEST(Optimizer, ParallelSearchMatchesSerial) {
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(512 * KiB, 40);
  const auto serial = optimize_region(p, reqs, 512.0 * KiB);

  ThreadPool pool(4);
  OptimizerOptions opts;
  opts.pool = &pool;
  const auto parallel = optimize_region(p, reqs, 512.0 * KiB, opts);
  EXPECT_EQ(serial.stripes, parallel.stripes);
  EXPECT_DOUBLE_EQ(serial.model_cost, parallel.model_cost);
}

TEST(Optimizer, CoalescedSearchIsBitIdenticalToBruteForce) {
  // Request-class coalescing memoizes request_cost per (op, size,
  // offset mod S) but accumulates in original order, so every output —
  // stripes, tie-breaks, the cost double itself — matches brute force
  // exactly.  Mixed ops and sizes to exercise multiple classes.
  const CostParams p = calibrated_params();
  Rng rng(19);
  std::vector<FileRequest> reqs;
  for (std::size_t i = 0; i < 300; ++i) {
    const Bytes size = i % 4 ? 256 * KiB : 512 * KiB;
    reqs.push_back(FileRequest{i % 2 ? IoOp::kWrite : IoOp::kRead,
                               rng.uniform_u64(0, 2048) * (64 * KiB), size});
  }
  OptimizerOptions brute;
  brute.coalesce = false;
  OptimizerOptions coalesced;
  coalesced.coalesce = true;
  const auto a = optimize_region(p, reqs, 384.0 * KiB, brute);
  const auto b = optimize_region(p, reqs, 384.0 * KiB, coalesced);
  EXPECT_EQ(a.stripes, b.stripes);
  EXPECT_EQ(a.model_cost, b.model_cost);  // exact, not approximate
  EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated);
  // Counter accounting: brute force does cost_evals work and saves nothing;
  // coalescing's evals + saved must equal brute force's total.
  EXPECT_EQ(a.cost_evals_saved, 0u);
  EXPECT_GT(b.cost_evals_saved, 0u);
  EXPECT_EQ(b.cost_evals + b.cost_evals_saved, a.cost_evals);
}

TEST(Optimizer, CoalescedShardedSearchMatchesBruteForce) {
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(512 * KiB, 64);
  OptimizerOptions brute;
  brute.coalesce = false;
  ThreadPool pool(4);
  OptimizerOptions sharded;
  sharded.pool = &pool;
  const auto a = optimize_region(p, reqs, 512.0 * KiB, brute);
  const auto b = optimize_region(p, reqs, 512.0 * KiB, sharded);
  EXPECT_EQ(a.stripes, b.stripes);
  EXPECT_EQ(a.model_cost, b.model_cost);
  EXPECT_EQ(b.cost_evals + b.cost_evals_saved, a.cost_evals);
}

TEST(RegionCost, CoalescedScoreMatchesPlainLoop) {
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(256 * KiB, 128, IoOp::kWrite);
  const StripePair hs{32 * KiB, 160 * KiB};
  EXPECT_EQ(region_cost(p, reqs, hs, 0, false),
            region_cost(p, reqs, hs, 0, true));
  // Sampling composes with coalescing.
  EXPECT_EQ(region_cost(p, reqs, hs, 32, false),
            region_cost(p, reqs, hs, 32, true));
}

TEST(Optimizer, SamplingPreservesTheArgmin) {
  const CostParams p = calibrated_params();
  // All requests identical: sampling cannot change anything.
  std::vector<FileRequest> reqs(500, FileRequest{IoOp::kRead, 0, 512 * KiB});
  OptimizerOptions sampled;
  sampled.max_requests = 10;
  const auto full = optimize_region(p, reqs, 512.0 * KiB);
  const auto sub = optimize_region(p, reqs, 512.0 * KiB, sampled);
  EXPECT_EQ(full.stripes, sub.stripes);
  EXPECT_NEAR(full.model_cost, sub.model_cost, full.model_cost * 1e-9);
}

TEST(Optimizer, StepControlsGridResolution) {
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(256 * KiB, 16);
  OptimizerOptions coarse;
  coarse.step = 64 * KiB;
  OptimizerOptions fine;
  fine.step = 4 * KiB;
  const auto c = optimize_region(p, reqs, 256.0 * KiB, coarse);
  const auto f = optimize_region(p, reqs, 256.0 * KiB, fine);
  EXPECT_LT(c.candidates_evaluated, f.candidates_evaluated);
  // Finer grids can only improve (the coarse grid is a subset).
  EXPECT_LE(f.model_cost, c.model_cost + 1e-12);
  // Results land on their grids.
  EXPECT_EQ(c.stripes.h % (64 * KiB), 0u);
  EXPECT_EQ(f.stripes.h % (4 * KiB), 0u);
}

TEST(Optimizer, WriteRegionsUseWriteCosts) {
  const CostParams p = calibrated_params();
  const auto reads = uniform_requests(512 * KiB, 32, IoOp::kRead);
  const auto writes = uniform_requests(512 * KiB, 32, IoOp::kWrite);
  const auto r = optimize_region(p, reads, 512.0 * KiB);
  const auto w = optimize_region(p, writes, 512.0 * KiB);
  // SSD writes are slower than reads, so the write-optimal layout leans
  // (weakly) more on HServers; at minimum the costs must differ.
  EXPECT_NE(r.model_cost, w.model_cost);
}

TEST(Optimizer, HserverOnlyClusterStaysOnHservers) {
  const CostParams p = calibrated_params(4, 0);
  const auto reqs = uniform_requests(256 * KiB, 16);
  const auto result = optimize_region(p, reqs, 256.0 * KiB);
  EXPECT_GT(result.stripes.h, 0u);
  EXPECT_EQ(result.stripes.s, 0u);
}

TEST(Optimizer, SserverOnlyClusterStaysOnSservers) {
  const CostParams p = calibrated_params(0, 4);
  const auto reqs = uniform_requests(256 * KiB, 16);
  const auto result = optimize_region(p, reqs, 256.0 * KiB);
  EXPECT_EQ(result.stripes.h, 0u);
  EXPECT_GT(result.stripes.s, 0u);
}

TEST(Optimizer, SserverShareBoundIsRespected) {
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(512 * KiB, 32);
  OptimizerOptions opts;
  opts.max_sserver_share = 0.4;
  const auto result = optimize_region(p, reqs, 512.0 * KiB, opts);
  const double S = 6.0 * result.stripes.h + 2.0 * result.stripes.s;
  EXPECT_LE(2.0 * result.stripes.s / S, 0.4 + 1e-9);
  // Constraining the search can only cost model time.
  const auto unconstrained = optimize_region(p, reqs, 512.0 * KiB);
  EXPECT_GE(result.model_cost, unconstrained.model_cost - 1e-12);
}

TEST(Optimizer, ImpossibleShareBoundFallsBackToFrugalest) {
  // On an SServer-only cluster every candidate has share 1; the bound is
  // infeasible, so the minimum-share candidates must still be searched.
  const CostParams p = calibrated_params(0, 4);
  const auto reqs = uniform_requests(256 * KiB, 8);
  OptimizerOptions opts;
  opts.max_sserver_share = 0.1;
  const auto result = optimize_region(p, reqs, 256.0 * KiB, opts);
  EXPECT_GT(result.stripes.s, 0u);
}

TEST(Optimizer, RejectsBadShareBound) {
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(64 * KiB, 4);
  OptimizerOptions opts;
  opts.max_sserver_share = 0.0;
  EXPECT_THROW(optimize_region(p, reqs, 64.0 * KiB, opts),
               std::invalid_argument);
  opts.max_sserver_share = 1.5;
  EXPECT_THROW(optimize_region(p, reqs, 64.0 * KiB, opts),
               std::invalid_argument);
}

TEST(Optimizer, ValidatesInputs) {
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(64 * KiB, 4);
  EXPECT_THROW(optimize_region(p, {}, 64.0 * KiB), std::invalid_argument);
  EXPECT_THROW(optimize_region(p, reqs, 0.0), std::invalid_argument);
  OptimizerOptions bad;
  bad.step = 0;
  EXPECT_THROW(optimize_region(p, reqs, 64.0 * KiB, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pinned optima, captured from the dedicated two-tier optimizer before the
// grid search generalized to tier vectors.  The generic k=2 engine must
// reproduce them *bit for bit* — stripes, model cost, and grid size — so
// these fail on any change to candidate order, tie-breaking, or the cost
// kernel's accumulation order.
// ---------------------------------------------------------------------------

TEST(Optimizer, PinnedHybridOptimumAt512K) {
  // The paper's {32K, 160K}-class hybrid regime (Fig. 7, large requests).
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(512 * KiB, 64);
  const auto result = optimize_region(p, reqs, 512.0 * KiB);
  EXPECT_EQ(result.stripes.h, 12288u);
  EXPECT_EQ(result.stripes.s, 225280u);
  EXPECT_EQ(result.model_cost, 0x1.62a0edd8cc586p-3);
  EXPECT_EQ(result.candidates_evaluated, 8257u);
}

TEST(Optimizer, PinnedSsdOnlyOptimumAt128K) {
  // The paper's {0K, 64K} SServer-only regime (Fig. 9, small requests).
  const CostParams p = calibrated_params();
  const auto reqs = uniform_requests(128 * KiB, 64);
  const auto result = optimize_region(p, reqs, 128.0 * KiB);
  EXPECT_EQ(result.stripes.h, 0u);
  EXPECT_EQ(result.stripes.s, 65536u);
  EXPECT_EQ(result.model_cost, 0x1.856557900ba3fp-5);
  EXPECT_EQ(result.candidates_evaluated, 529u);
}

TEST(Optimizer, TieredSearchAgreesWithTwoTierPathOnK2) {
  // The k-tier enumeration covers a different grid (monotone tier vectors),
  // but when the two-tier optimum lies inside both grids the winning stripes
  // and cost must agree exactly — same kernel, same accumulation order.
  const CostParams p = calibrated_params();
  const TieredCostParams tp = to_tiered(p);
  for (const Bytes size : {128 * KiB, 512 * KiB}) {
    SCOPED_TRACE("request size " + std::to_string(size));
    const auto reqs = uniform_requests(size, 64);
    const auto two_tier =
        optimize_region(p, reqs, static_cast<double>(size));
    const auto tiered =
        optimize_region_tiered(tp, reqs, static_cast<double>(size));
    ASSERT_EQ(tiered.stripes.size(), 2u);
    EXPECT_EQ(tiered.stripes[0], two_tier.stripes.h);
    EXPECT_EQ(tiered.stripes[1], two_tier.stripes.s);
    EXPECT_EQ(tiered.model_cost, two_tier.model_cost);
  }
}

TEST(RegionCost, SumsPerRequestCosts) {
  const CostParams p = calibrated_params();
  std::vector<FileRequest> reqs = {
      FileRequest{IoOp::kRead, 0, 512 * KiB},
      FileRequest{IoOp::kWrite, 1 * MiB, 512 * KiB},
  };
  const Seconds total = region_cost(p, reqs, {64 * KiB, 64 * KiB});
  const Seconds expect =
      request_cost(p, IoOp::kRead, 0, 512 * KiB, {64 * KiB, 64 * KiB}) +
      request_cost(p, IoOp::kWrite, 1 * MiB, 512 * KiB, {64 * KiB, 64 * KiB});
  EXPECT_DOUBLE_EQ(total, expect);
}

}  // namespace
}  // namespace harl::core
