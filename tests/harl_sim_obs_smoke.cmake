# CTest script: end-to-end observability smoke through the real harl_sim
# binary.  One small run with metrics-out= and trace-out= must produce both
# files, and tools/obs_report.py --check must validate them: schemes present
# and sane in the metrics, well-formed Chrome trace JSON with monotone span
# nesting per track and matched async pairs.  The Python validation is
# skipped (with a notice) when no python3 is on PATH.
if(NOT DEFINED HARL_SIM OR NOT DEFINED WORK_DIR OR NOT DEFINED OBS_REPORT)
  message(FATAL_ERROR
          "pass -DHARL_SIM=<binary> -DWORK_DIR=<dir> -DOBS_REPORT=<script>")
endif()

set(metrics_file ${WORK_DIR}/obs_smoke_metrics.json)
set(trace_file ${WORK_DIR}/obs_smoke_trace.json)
file(REMOVE ${metrics_file} ${trace_file})

execute_process(
  COMMAND ${HARL_SIM} workload=ior procs=4 file=64M request=512K requests=8
          schemes=64K,harl metrics-out=${metrics_file} trace-out=${trace_file}
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "instrumented run failed (${run_rc}): ${run_err}")
endif()

foreach(out_file IN ITEMS ${metrics_file} ${trace_file})
  if(NOT EXISTS ${out_file})
    message(FATAL_ERROR "run did not write ${out_file}")
  endif()
  file(SIZE ${out_file} out_size)
  if(out_size EQUAL 0)
    message(FATAL_ERROR "${out_file} is empty")
  endif()
endforeach()

# The summary table must still appear on stdout: observability is additive.
if(NOT run_out MATCHES "HARL")
  message(FATAL_ERROR "instrumented run lost its normal output:\n${run_out}")
endif()

find_program(PYTHON3 NAMES python3 python)
if(NOT PYTHON3)
  message(STATUS "python3 not found; wrote and size-checked "
                 "${metrics_file} and ${trace_file} only")
  return()
endif()

execute_process(
  COMMAND ${PYTHON3} ${OBS_REPORT} ${metrics_file} --trace ${trace_file}
          --check
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "obs_report.py --check failed (${check_rc}):\n"
                      "${check_out}${check_err}")
endif()
message(STATUS "obs smoke ok: ${check_out}")
