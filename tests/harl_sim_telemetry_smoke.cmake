# CTest script: telemetry-plane smoke through the real harl_sim binary.
# A GC-pause straggler run with `health=1 timeseries-out=` at sim-threads=2
# must (a) write the windowed time-series/health JSON, (b) be byte-identical
# to the same run on the sequential engine, and (c) pass
# `obs_report.py --timeseries --check --require-health` — i.e. at least one
# server is flagged and the SLO regression localizes to the injected server.
# The Python validation and the HTML dashboard are skipped (with a notice)
# when no python3 is on PATH.
if(NOT DEFINED HARL_SIM OR NOT DEFINED WORK_DIR OR NOT DEFINED OBS_REPORT)
  message(FATAL_ERROR
          "pass -DHARL_SIM=<binary> -DWORK_DIR=<dir> -DOBS_REPORT=<script>")
endif()

set(ts_pdes ${WORK_DIR}/telemetry_smoke_pdes.json)
set(ts_seq ${WORK_DIR}/telemetry_smoke_seq.json)
set(dashboard ${WORK_DIR}/telemetry_smoke_dashboard.html)
file(REMOVE ${ts_pdes} ${ts_seq} ${dashboard})

# Deterministic straggler: server 0 spends 60ms of every 100ms in GC at 8x
# service time, the 5ms SLO separates its submissions from the fleet's.
set(run_args
  workload=ior procs=8 requests=64 schemes=harl
  gc-pause-ms=60 gc-period=0.1 gc-factor=8 gc-server=0
  slo-ms=5 health=1)

execute_process(
  COMMAND ${HARL_SIM} ${run_args} sim-threads=2 timeseries-out=${ts_pdes}
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "telemetry run failed (${run_rc}): ${run_err}")
endif()
if(NOT EXISTS ${ts_pdes})
  message(FATAL_ERROR "run did not write ${ts_pdes}")
endif()
file(SIZE ${ts_pdes} ts_size)
if(ts_size EQUAL 0)
  message(FATAL_ERROR "${ts_pdes} is empty")
endif()

# The summary table must still appear on stdout: telemetry is additive.
if(NOT run_out MATCHES "HARL")
  message(FATAL_ERROR "telemetry run lost its normal output:\n${run_out}")
endif()

# Same run on the sequential engine: the telemetry export must not depend on
# the event engine, so the two files must be byte-identical.
execute_process(
  COMMAND ${HARL_SIM} ${run_args} sim-threads=0 timeseries-out=${ts_seq}
  OUTPUT_VARIABLE seq_out
  ERROR_VARIABLE seq_err
  RESULT_VARIABLE seq_rc)
if(NOT seq_rc EQUAL 0)
  message(FATAL_ERROR "sequential telemetry run failed (${seq_rc}): ${seq_err}")
endif()
file(SHA256 ${ts_pdes} pdes_hash)
file(SHA256 ${ts_seq} seq_hash)
if(NOT pdes_hash STREQUAL seq_hash)
  message(FATAL_ERROR "timeseries output differs between sim-threads=2 and "
                      "the sequential engine:\n  ${ts_pdes}\n  ${ts_seq}")
endif()

find_program(PYTHON3 NAMES python3 python)
if(NOT PYTHON3)
  message(STATUS "python3 not found; wrote, size-checked and byte-compared "
                 "${ts_pdes} only")
  return()
endif()

execute_process(
  COMMAND ${PYTHON3} ${OBS_REPORT} --timeseries ${ts_pdes} --require-health
          --html ${dashboard} --check
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "obs_report.py --check --require-health failed "
                      "(${check_rc}):\n${check_out}${check_err}")
endif()

# The self-contained dashboard must exist and actually contain the charts.
if(NOT EXISTS ${dashboard})
  message(FATAL_ERROR "obs_report did not write ${dashboard}")
endif()
file(READ ${dashboard} dash_html)
if(NOT dash_html MATCHES "<svg" OR NOT dash_html MATCHES "FLAGGED")
  message(FATAL_ERROR "dashboard lacks charts or the flagged-server table:\n"
                      "${dashboard}")
endif()

message(STATUS "telemetry smoke ok: ${check_out}")
