# CTest script: failure/rebuild-storm smoke through the real harl_sim binary.
# A 4-file, 2-tenant population run that kills the last data server at 50ms
# must (a) write the windowed time-series/health JSON at sim-threads=2,
# (b) be byte-identical to the same run on the sequential engine, (c) report
# the storm on stdout — degraded reads served from replicas, rebuild traffic
# drained, the adaptive layer re-planned around the dead server — and
# (d) pass `obs_report.py --timeseries --check --require-tenant`, i.e. the
# health block carries a reconciling per-tenant SLO attainment table.
# The Python validation is skipped (with a notice) when no python3 is on PATH.
if(NOT DEFINED HARL_SIM OR NOT DEFINED WORK_DIR OR NOT DEFINED OBS_REPORT)
  message(FATAL_ERROR
          "pass -DHARL_SIM=<binary> -DWORK_DIR=<dir> -DOBS_REPORT=<script>")
endif()

set(ts_pdes ${WORK_DIR}/rebuild_smoke_pdes.json)
set(ts_seq ${WORK_DIR}/rebuild_smoke_seq.json)
file(REMOVE ${ts_pdes} ${ts_seq})

# Deterministic storm: 4 files over 2 tenants, replicated (the default),
# server 7 (last SServer of the default 4+4 cluster) dies at 50ms — early
# enough that reads and the rebuild drain contend with foreground I/O.
set(run_args
  files=4 tenants=2 procs=4 file=8M request=256K schemes=harl-adaptive
  fail-server=7 fail-at=0.05 health=1 slo-ms=50)

execute_process(
  COMMAND ${HARL_SIM} ${run_args} sim-threads=2 timeseries-out=${ts_pdes}
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "rebuild-storm run failed (${run_rc}): ${run_err}")
endif()
if(NOT EXISTS ${ts_pdes})
  message(FATAL_ERROR "run did not write ${ts_pdes}")
endif()
file(SIZE ${ts_pdes} ts_size)
if(ts_size EQUAL 0)
  message(FATAL_ERROR "${ts_pdes} is empty")
endif()

# The storm must be visible in the run summary: degraded reads actually
# happened, the rebuild moved bytes, and the adaptive layer re-planned.
if(NOT run_out MATCHES "degraded read")
  message(FATAL_ERROR "no degraded reads reported:\n${run_out}")
endif()
if(NOT run_out MATCHES "rebuild [0-9]")
  message(FATAL_ERROR "no rebuild traffic reported:\n${run_out}")
endif()
if(NOT run_out MATCHES "adaptive replan=yes")
  message(FATAL_ERROR "adaptive layer did not re-plan around the failed "
                      "server:\n${run_out}")
endif()
if(NOT run_out MATCHES "tenant SLO attainment")
  message(FATAL_ERROR "no per-tenant SLO attainment line:\n${run_out}")
endif()

# Same storm on the sequential engine: failure injection, degraded reads and
# rebuild scheduling must not depend on the event engine, so the telemetry
# files must be byte-identical.
execute_process(
  COMMAND ${HARL_SIM} ${run_args} sim-threads=0 timeseries-out=${ts_seq}
  OUTPUT_VARIABLE seq_out
  ERROR_VARIABLE seq_err
  RESULT_VARIABLE seq_rc)
if(NOT seq_rc EQUAL 0)
  message(FATAL_ERROR "sequential rebuild-storm run failed (${seq_rc}): "
                      "${seq_err}")
endif()
file(SHA256 ${ts_pdes} pdes_hash)
file(SHA256 ${ts_seq} seq_hash)
if(NOT pdes_hash STREQUAL seq_hash)
  message(FATAL_ERROR "timeseries output differs between sim-threads=2 and "
                      "the sequential engine:\n  ${ts_pdes}\n  ${ts_seq}")
endif()

find_program(PYTHON3 NAMES python3 python)
if(NOT PYTHON3)
  message(STATUS "python3 not found; wrote, size-checked and byte-compared "
                 "${ts_pdes} only")
  return()
endif()

execute_process(
  COMMAND ${PYTHON3} ${OBS_REPORT} --timeseries ${ts_pdes} --require-tenant
          --check
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "obs_report.py --check --require-tenant failed "
                      "(${check_rc}):\n${check_out}${check_err}")
endif()

message(STATUS "rebuild-storm smoke ok: ${check_out}")
