// Event-engine tests: the InlineTask small-buffer callable, the arena /
// now-lane / ascending-lane / heap queue machinery behind Simulator, and a
// randomized property test pinning the dispatch order to a reference
// (time, seq) priority-queue model — the bit-reproducibility invariant every
// figure bench depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/sim/inline_task.hpp"
#include "src/sim/simulator.hpp"

namespace harl::sim {
namespace {

// --- InlineTask ------------------------------------------------------------

TEST(InlineTask, SmallCapturesStayInline) {
  int hits = 0;
  int* p = &hits;
  InlineTask task([p] { ++*p; });
  EXPECT_TRUE(task.stored_inline());
  task();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, CapacitySizedCaptureStaysInline) {
  struct Capture {
    unsigned char bytes[InlineTask::kCapacity] = {};
  };
  bool inline_checked = InlineTask(
                            [c = Capture{}] { (void)c; })
                            .stored_inline();
  EXPECT_TRUE(inline_checked);
}

TEST(InlineTask, OversizedCapturesFallBackToHeap) {
  struct Big {
    unsigned char bytes[InlineTask::kCapacity + 1] = {};
  };
  Big big;
  big.bytes[0] = 42;
  int seen = 0;
  InlineTask task([big, &seen] { seen = big.bytes[0]; });
  EXPECT_FALSE(task.stored_inline());
  task();
  EXPECT_EQ(seen, 42);
}

TEST(InlineTask, AcceptsMoveOnlyCallables) {
  auto owner = std::make_unique<int>(7);
  int seen = 0;
  InlineTask task([owner = std::move(owner), &seen] { seen = *owner; });
  InlineTask moved = std::move(task);
  EXPECT_FALSE(static_cast<bool>(task));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(seen, 7);
}

TEST(InlineTask, MoveOnlyOversizedCallableSurvivesMoves) {
  struct Payload {
    std::unique_ptr<int> value;
    unsigned char pad[InlineTask::kCapacity] = {};
  };
  Payload payload;
  payload.value = std::make_unique<int>(11);
  int seen = 0;
  InlineTask a([payload = std::move(payload), &seen] {
    seen = *payload.value;
  });
  EXPECT_FALSE(a.stored_inline());
  InlineTask b = std::move(a);
  InlineTask c;
  c = std::move(b);
  c();
  EXPECT_EQ(seen, 11);
}

TEST(InlineTask, DestroysCallableExactlyOnce) {
  struct Counter {
    int* live;
    explicit Counter(int* l) : live(l) { ++*live; }
    Counter(const Counter& o) : live(o.live) { ++*live; }
    Counter(Counter&& o) noexcept : live(o.live) { ++*live; }
    ~Counter() { --*live; }
    void operator()() const {}
  };
  int live = 0;
  {
    InlineTask task{Counter(&live)};
    EXPECT_GE(live, 1);
  }
  EXPECT_EQ(live, 0);
  {
    InlineTask task{Counter(&live)};
    InlineTask other = std::move(task);
    other.reset();
    EXPECT_EQ(live, 0);
  }
  EXPECT_EQ(live, 0);
}

// --- dispatch-order property test ------------------------------------------

/// Reference model: a plain std::priority_queue over (time, seq) — the
/// specified total order, with none of the engine's lane/arena machinery.
class ReferenceQueue {
 public:
  void schedule(double time, std::uint64_t id) {
    queue_.push(Entry{time, seq_++, id});
  }
  bool empty() const { return queue_.empty(); }
  std::pair<double, std::uint64_t> pop() {
    const Entry top = queue_.top();
    queue_.pop();
    return {top.time, top.id};
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::uint64_t seq_ = 0;
};

TEST(SimulatorProperty, DispatchOrderMatchesReferenceModel) {
  // Randomized interleavings of scheduling and dispatching, heavy on the
  // engine's special cases: zero-delay events (now lane), equal timestamps
  // (seq tie-break), in-order appends (ascending lane) and out-of-order
  // inserts (heap).  The simulator must dispatch exactly the reference
  // order, every seed.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    std::mt19937_64 rng(seed);
    Simulator sim;
    ReferenceQueue reference;
    std::vector<std::uint64_t> dispatched;
    std::vector<std::pair<double, std::uint64_t>> expected;

    std::uint64_t next_id = 0;
    // A few timestamps repeat on purpose so ties are common.
    std::uniform_real_distribution<double> jitter(0.0, 4.0);
    std::uniform_int_distribution<int> action(0, 9);

    const auto schedule_one = [&] {
      double t;
      switch (action(rng)) {
        case 0:
        case 1:
          t = sim.now();  // zero delay -> now lane
          break;
        case 2:
          t = sim.now() + 1.0;  // repeated offsets -> frequent exact ties
          break;
        default:
          t = sim.now() + jitter(rng);
          break;
      }
      const std::uint64_t id = next_id++;
      reference.schedule(t, id);
      sim.schedule_at(t, [&dispatched, id] { dispatched.push_back(id); });
    };

    for (int round = 0; round < 400; ++round) {
      const int burst = action(rng);
      for (int i = 0; i < burst; ++i) schedule_one();
      // Drain a random prefix so scheduling interleaves with dispatching at
      // many different `now` values.
      const int drain = action(rng);
      for (int i = 0; i < drain && !reference.empty(); ++i) {
        expected.push_back(reference.pop());
        sim.run_until(expected.back().first);
      }
    }
    while (!reference.empty()) expected.push_back(reference.pop());
    sim.run();

    ASSERT_EQ(dispatched.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(dispatched[i], expected[i].second)
          << "seed " << seed << " position " << i;
    }
  }
}

TEST(SimulatorProperty, RunUntilDispatchesExactlyTheReferencePrefix) {
  Simulator sim;
  ReferenceQueue reference;
  std::vector<std::uint64_t> dispatched;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(0.0, 10.0);
  for (std::uint64_t id = 0; id < 200; ++id) {
    const double t = dist(rng);
    reference.schedule(t, id);
    sim.schedule_at(t, [&dispatched, id] { dispatched.push_back(id); });
  }
  sim.run_until(5.0);
  std::vector<std::uint64_t> expected;
  while (!reference.empty()) {
    const auto [t, id] = reference.pop();
    if (t <= 5.0) expected.push_back(id);
  }
  EXPECT_EQ(dispatched, expected);
  sim.run();
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ZeroDelayRunsBeforeEqualTimeHeapEvent) {
  // A (earlier seq, scheduled from the future via the heap) vs B (zero-delay
  // at the same timestamp, scheduled later from inside a callback): seq
  // order must win — A fires before B only if A's seq is lower.
  Simulator sim;
  std::vector<char> order;
  sim.schedule_at(1.0, [&] {
    // now == 1.0; C enters the now lane with a later seq than D below.
    sim.schedule_after(0.0, [&] { order.push_back('C'); });
  });
  sim.schedule_at(1.0, [&] { order.push_back('D'); });
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'D', 'C'}));
}

TEST(Simulator, EqualTimesAcrossLanesFollowSeqOrder) {
  // Events at one timestamp land in different structures — ascending lane,
  // heap (out-of-order inserts) and now lane (zero-delay) — and dispatch
  // must still interleave them purely by insertion seq.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(9); });  // ascending lane
  sim.schedule_at(2.0, [&] { order.push_back(0); });  // heap (out of order)
  sim.schedule_at(2.0, [&] {                          // heap, next seq
    order.push_back(1);
    sim.schedule_after(0.0, [&] { order.push_back(3); });  // now lane
  });
  sim.schedule_at(2.0, [&] { order.push_back(2); });  // heap
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 9}));
}

// --- engine instrumentation ------------------------------------------------

TEST(SimulatorStats, CountsLanesPoolAndDispatches) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(static_cast<Time>(i + 1), [&] { ++fired; });
  }
  sim.schedule_at(0.0, [&] {
    ++fired;
    sim.schedule_after(0.0, [&] { ++fired; });
  });
  sim.run();
  const Simulator::Stats stats = sim.stats();
  EXPECT_EQ(fired, 12);
  EXPECT_EQ(stats.events_dispatched, 12u);
  // Both the t == now() == 0 schedule and the zero-delay reschedule.
  EXPECT_EQ(stats.now_lane_events, 2u);
  EXPECT_EQ(stats.ascending_events, 10u);  // the in-order loop appends
  EXPECT_GE(stats.peak_queue_depth, 11u);
  EXPECT_EQ(stats.pool_misses, 1u);  // one chunk covers 12 concurrent slots
  EXPECT_EQ(stats.pool_chunks, 1u);
  EXPECT_EQ(stats.pool_hits + stats.pool_misses, 12u);
  EXPECT_EQ(stats.inline_callbacks, 12u);
  EXPECT_EQ(stats.heap_callbacks, 0u);
}

TEST(SimulatorStats, SteadyStateReusesSlotsWithoutGrowth) {
  // Self-perpetuating chain: one live event at a time, so after the first
  // chunk every slot request must be a pool hit (zero allocations/event).
  Simulator sim;
  int remaining = 10000;
  std::function<void()> next = [&] {
    if (remaining-- > 0) sim.schedule_after(1e-6, next);
  };
  next();
  sim.run();
  const Simulator::Stats stats = sim.stats();
  EXPECT_EQ(stats.events_dispatched, 10000u);
  EXPECT_EQ(stats.pool_misses, 1u);
  EXPECT_EQ(stats.pool_chunks, 1u);
  EXPECT_EQ(stats.pool_hits, 9999u);
}

TEST(SimulatorStats, OversizedCallablesCountAsSpilled) {
  struct Big {
    unsigned char bytes[128] = {};
  };
  Simulator sim;
  Big big;
  sim.schedule_at(1.0, [big] { (void)big; });
  sim.run();
  EXPECT_EQ(sim.stats().heap_callbacks, 1u);
  EXPECT_EQ(sim.stats().inline_callbacks, 0u);
}

// --- parked continuations --------------------------------------------------

TEST(SimulatorPark, FiresParkedTaskAndReusesSlot) {
  Simulator sim;
  int fired = 0;
  const Simulator::TaskHandle h = sim.park([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  sim.fire_parked(h);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorPark, ParkedTaskMayParkNewWork) {
  Simulator sim;
  std::vector<int> order;
  const Simulator::TaskHandle first = sim.park([&] {
    order.push_back(1);
    const Simulator::TaskHandle second = sim.park([&] { order.push_back(2); });
    sim.fire_parked(second);
  });
  sim.fire_parked(first);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorPark, ParkDoesNotPerturbDispatchOrder) {
  // park() consumes an arena slot but no seq number, so interleaving parks
  // with schedules must leave the (time, seq) dispatch order untouched.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  const Simulator::TaskHandle h = sim.park([&] { order.push_back(99); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run();
  sim.fire_parked(h);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

// --- guard rails -----------------------------------------------------------

TEST(SimulatorGuards, RejectsPastAndNaNTimes) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(std::nan(""), [] {}),
               std::invalid_argument);
}

TEST(SimulatorGuards, NegativeZeroDelayIsZeroDelay) {
  // -0.0 must canonicalize: it equals now(), so it takes the now lane and
  // packs to the same key bits as +0.0.
  Simulator sim;
  int fired = 0;
  sim.schedule_after(-0.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.stats().now_lane_events, 1u);
}

}  // namespace
}  // namespace harl::sim
