// Event-engine tests: the InlineTask small-buffer callable, the arena /
// now-lane / ascending-lane / heap queue machinery behind Simulator, and a
// randomized property test pinning the dispatch order to a reference
// (time, seq) priority-queue model — the bit-reproducibility invariant every
// figure bench depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/sim/inline_task.hpp"
#include "src/sim/pdes.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"

namespace harl::sim {
namespace {

// --- InlineTask ------------------------------------------------------------

TEST(InlineTask, SmallCapturesStayInline) {
  int hits = 0;
  int* p = &hits;
  InlineTask task([p] { ++*p; });
  EXPECT_TRUE(task.stored_inline());
  task();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, CapacitySizedCaptureStaysInline) {
  struct Capture {
    unsigned char bytes[InlineTask::kCapacity] = {};
  };
  bool inline_checked = InlineTask(
                            [c = Capture{}] { (void)c; })
                            .stored_inline();
  EXPECT_TRUE(inline_checked);
}

TEST(InlineTask, OversizedCapturesFallBackToHeap) {
  struct Big {
    unsigned char bytes[InlineTask::kCapacity + 1] = {};
  };
  Big big;
  big.bytes[0] = 42;
  int seen = 0;
  InlineTask task([big, &seen] { seen = big.bytes[0]; });
  EXPECT_FALSE(task.stored_inline());
  task();
  EXPECT_EQ(seen, 42);
}

TEST(InlineTask, AcceptsMoveOnlyCallables) {
  auto owner = std::make_unique<int>(7);
  int seen = 0;
  InlineTask task([owner = std::move(owner), &seen] { seen = *owner; });
  InlineTask moved = std::move(task);
  EXPECT_FALSE(static_cast<bool>(task));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(seen, 7);
}

TEST(InlineTask, MoveOnlyOversizedCallableSurvivesMoves) {
  struct Payload {
    std::unique_ptr<int> value;
    unsigned char pad[InlineTask::kCapacity] = {};
  };
  Payload payload;
  payload.value = std::make_unique<int>(11);
  int seen = 0;
  InlineTask a([payload = std::move(payload), &seen] {
    seen = *payload.value;
  });
  EXPECT_FALSE(a.stored_inline());
  InlineTask b = std::move(a);
  InlineTask c;
  c = std::move(b);
  c();
  EXPECT_EQ(seen, 11);
}

TEST(InlineTask, DestroysCallableExactlyOnce) {
  struct Counter {
    int* live;
    explicit Counter(int* l) : live(l) { ++*live; }
    Counter(const Counter& o) : live(o.live) { ++*live; }
    Counter(Counter&& o) noexcept : live(o.live) { ++*live; }
    ~Counter() { --*live; }
    void operator()() const {}
  };
  int live = 0;
  {
    InlineTask task{Counter(&live)};
    EXPECT_GE(live, 1);
  }
  EXPECT_EQ(live, 0);
  {
    InlineTask task{Counter(&live)};
    InlineTask other = std::move(task);
    other.reset();
    EXPECT_EQ(live, 0);
  }
  EXPECT_EQ(live, 0);
}

// --- dispatch-order property test ------------------------------------------

/// Reference model: a plain std::priority_queue over (time, seq) — the
/// specified total order, with none of the engine's lane/arena machinery.
class ReferenceQueue {
 public:
  void schedule(double time, std::uint64_t id) {
    queue_.push(Entry{time, seq_++, id});
  }
  bool empty() const { return queue_.empty(); }
  std::pair<double, std::uint64_t> pop() {
    const Entry top = queue_.top();
    queue_.pop();
    return {top.time, top.id};
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::uint64_t seq_ = 0;
};

TEST(SimulatorProperty, DispatchOrderMatchesReferenceModel) {
  // Randomized interleavings of scheduling and dispatching, heavy on the
  // engine's special cases: zero-delay events (now lane), equal timestamps
  // (seq tie-break), in-order appends (ascending lane) and out-of-order
  // inserts (heap).  The simulator must dispatch exactly the reference
  // order, every seed.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    std::mt19937_64 rng(seed);
    Simulator sim;
    ReferenceQueue reference;
    std::vector<std::uint64_t> dispatched;
    std::vector<std::pair<double, std::uint64_t>> expected;

    std::uint64_t next_id = 0;
    // A few timestamps repeat on purpose so ties are common.
    std::uniform_real_distribution<double> jitter(0.0, 4.0);
    std::uniform_int_distribution<int> action(0, 9);

    const auto schedule_one = [&] {
      double t;
      switch (action(rng)) {
        case 0:
        case 1:
          t = sim.now();  // zero delay -> now lane
          break;
        case 2:
          t = sim.now() + 1.0;  // repeated offsets -> frequent exact ties
          break;
        default:
          t = sim.now() + jitter(rng);
          break;
      }
      const std::uint64_t id = next_id++;
      reference.schedule(t, id);
      sim.schedule_at(t, [&dispatched, id] { dispatched.push_back(id); });
    };

    for (int round = 0; round < 400; ++round) {
      const int burst = action(rng);
      for (int i = 0; i < burst; ++i) schedule_one();
      // Drain a random prefix so scheduling interleaves with dispatching at
      // many different `now` values.
      const int drain = action(rng);
      for (int i = 0; i < drain && !reference.empty(); ++i) {
        expected.push_back(reference.pop());
        sim.run_until(expected.back().first);
      }
    }
    while (!reference.empty()) expected.push_back(reference.pop());
    sim.run();

    ASSERT_EQ(dispatched.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(dispatched[i], expected[i].second)
          << "seed " << seed << " position " << i;
    }
  }
}

TEST(SimulatorProperty, RunUntilDispatchesExactlyTheReferencePrefix) {
  Simulator sim;
  ReferenceQueue reference;
  std::vector<std::uint64_t> dispatched;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(0.0, 10.0);
  for (std::uint64_t id = 0; id < 200; ++id) {
    const double t = dist(rng);
    reference.schedule(t, id);
    sim.schedule_at(t, [&dispatched, id] { dispatched.push_back(id); });
  }
  sim.run_until(5.0);
  std::vector<std::uint64_t> expected;
  while (!reference.empty()) {
    const auto [t, id] = reference.pop();
    if (t <= 5.0) expected.push_back(id);
  }
  EXPECT_EQ(dispatched, expected);
  sim.run();
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ZeroDelayRunsBeforeEqualTimeHeapEvent) {
  // A (earlier seq, scheduled from the future via the heap) vs B (zero-delay
  // at the same timestamp, scheduled later from inside a callback): seq
  // order must win — A fires before B only if A's seq is lower.
  Simulator sim;
  std::vector<char> order;
  sim.schedule_at(1.0, [&] {
    // now == 1.0; C enters the now lane with a later seq than D below.
    sim.schedule_after(0.0, [&] { order.push_back('C'); });
  });
  sim.schedule_at(1.0, [&] { order.push_back('D'); });
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'D', 'C'}));
}

TEST(Simulator, EqualTimesAcrossLanesFollowSeqOrder) {
  // Events at one timestamp land in different structures — ascending lane,
  // heap (out-of-order inserts) and now lane (zero-delay) — and dispatch
  // must still interleave them purely by insertion seq.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(9); });  // ascending lane
  sim.schedule_at(2.0, [&] { order.push_back(0); });  // heap (out of order)
  sim.schedule_at(2.0, [&] {                          // heap, next seq
    order.push_back(1);
    sim.schedule_after(0.0, [&] { order.push_back(3); });  // now lane
  });
  sim.schedule_at(2.0, [&] { order.push_back(2); });  // heap
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 9}));
}

// --- engine instrumentation ------------------------------------------------

TEST(SimulatorStats, CountsLanesPoolAndDispatches) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(static_cast<Time>(i + 1), [&] { ++fired; });
  }
  sim.schedule_at(0.0, [&] {
    ++fired;
    sim.schedule_after(0.0, [&] { ++fired; });
  });
  sim.run();
  const Simulator::Stats stats = sim.stats();
  EXPECT_EQ(fired, 12);
  EXPECT_EQ(stats.events_dispatched, 12u);
  // Both the t == now() == 0 schedule and the zero-delay reschedule.
  EXPECT_EQ(stats.now_lane_events, 2u);
  EXPECT_EQ(stats.ascending_events, 10u);  // the in-order loop appends
  EXPECT_GE(stats.peak_queue_depth, 11u);
  EXPECT_EQ(stats.pool_misses, 1u);  // one chunk covers 12 concurrent slots
  EXPECT_EQ(stats.pool_chunks, 1u);
  EXPECT_EQ(stats.pool_hits + stats.pool_misses, 12u);
  EXPECT_EQ(stats.inline_callbacks, 12u);
  EXPECT_EQ(stats.heap_callbacks, 0u);
}

TEST(SimulatorStats, SteadyStateReusesSlotsWithoutGrowth) {
  // Self-perpetuating chain: one live event at a time, so after the first
  // chunk every slot request must be a pool hit (zero allocations/event).
  Simulator sim;
  int remaining = 10000;
  std::function<void()> next = [&] {
    if (remaining-- > 0) sim.schedule_after(1e-6, next);
  };
  next();
  sim.run();
  const Simulator::Stats stats = sim.stats();
  EXPECT_EQ(stats.events_dispatched, 10000u);
  EXPECT_EQ(stats.pool_misses, 1u);
  EXPECT_EQ(stats.pool_chunks, 1u);
  EXPECT_EQ(stats.pool_hits, 9999u);
}

TEST(SimulatorStats, OversizedCallablesCountAsSpilled) {
  struct Big {
    unsigned char bytes[128] = {};
  };
  Simulator sim;
  Big big;
  sim.schedule_at(1.0, [big] { (void)big; });
  sim.run();
  EXPECT_EQ(sim.stats().heap_callbacks, 1u);
  EXPECT_EQ(sim.stats().inline_callbacks, 0u);
}

// --- parked continuations --------------------------------------------------

TEST(SimulatorPark, FiresParkedTaskAndReusesSlot) {
  Simulator sim;
  int fired = 0;
  const Simulator::TaskHandle h = sim.park([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  sim.fire_parked(h);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorPark, ParkedTaskMayParkNewWork) {
  Simulator sim;
  std::vector<int> order;
  const Simulator::TaskHandle first = sim.park([&] {
    order.push_back(1);
    const Simulator::TaskHandle second = sim.park([&] { order.push_back(2); });
    sim.fire_parked(second);
  });
  sim.fire_parked(first);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorPark, ParkDoesNotPerturbDispatchOrder) {
  // park() consumes an arena slot but no seq number, so interleaving parks
  // with schedules must leave the (time, seq) dispatch order untouched.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  const Simulator::TaskHandle h = sim.park([&] { order.push_back(99); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run();
  sim.fire_parked(h);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

// --- guard rails -----------------------------------------------------------

TEST(SimulatorGuards, RejectsPastAndNaNTimes) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(std::nan(""), [] {}),
               std::invalid_argument);
}

TEST(SimulatorGuards, NegativeZeroDelayIsZeroDelay) {
  // -0.0 must canonicalize: it equals now(), so it takes the now lane and
  // packs to the same key bits as +0.0.
  Simulator sim;
  int fired = 0;
  sim.schedule_after(-0.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.stats().now_lane_events, 1u);
}

// --- conservative PDES ------------------------------------------------------

/// splitmix64-style mixer: the deterministic "randomness" of the PDES
/// property workload, so every engine replays the identical event tree.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// A randomized cross-LP workload: root events seeded onto every LP, each
/// event spawning 0-2 children on hash-chosen LPs.  Cross-LP children are
/// delayed by at least the lookahead (the contract the PFS model satisfies
/// via network latency / per-stripe overhead); same-LP children may be
/// arbitrarily close.  Delays carry 53 bits of hash entropy so absolute
/// times are distinct and the total order is time order alone — comparable
/// across the sequential engine, the PDES runtime at any width, and a plain
/// priority-queue reference.
struct PdesScript {
  static constexpr std::uint32_t kLps = 5;
  static constexpr double kW = 0.25;  // lookahead
  static constexpr int kRoots = 24;
  static constexpr int kMaxDepth = 6;

  std::uint64_t seed = 0;

  struct Child {
    std::uint32_t lp;
    double time;
    std::uint64_t id;
  };

  std::vector<Child> children_of(std::uint32_t lp, double t,
                                 std::uint64_t id, int depth) const {
    std::vector<Child> out;
    if (depth >= kMaxDepth) return out;
    const std::uint64_t h = mix(seed ^ id);
    const int n = static_cast<int>(h % 3);
    for (int c = 0; c < n; ++c) {
      const std::uint64_t hc = mix(h + static_cast<std::uint64_t>(c) + 1);
      const std::uint32_t target = static_cast<std::uint32_t>(hc % kLps);
      const double frac =
          static_cast<double>(hc >> 11) * 0x1.0p-53;  // [0, 1), 53 bits
      const double delay =
          target == lp ? kW * 0.5 * frac : kW * (1.0 + frac);
      out.push_back(Child{target, t + delay, id * 4 + 1 + c});
    }
    return out;
  }

  std::vector<Child> roots() const {
    std::vector<Child> out;
    for (int i = 0; i < kRoots; ++i) {
      const std::uint64_t h = mix(seed + 1000 + static_cast<std::uint64_t>(i));
      const auto lp = static_cast<std::uint32_t>(h % kLps);
      const double t = static_cast<double>(h >> 11) * 0x1.0p-53;
      out.push_back(Child{lp, t, static_cast<std::uint64_t>(i + 1) << 40});
    }
    return out;
  }
};

/// Per-LP dispatch logs: each LP appends only its own vector, so recording
/// is race-free at any worker count.
using PerLpLog = std::vector<std::vector<std::pair<double, std::uint64_t>>>;

/// Runs the script on a Simulator; `threads` == 0 uses the sequential
/// engine (schedule_on degrades to schedule_at), >= 1 attaches a PDES
/// runtime at that width.  Returns the per-LP dispatch logs and the stats.
PerLpLog run_script(const PdesScript& script, unsigned threads,
                    Simulator::Stats* stats_out = nullptr) {
  Simulator sim;
  std::unique_ptr<pdes::Runtime> rt;
  if (threads >= 1) {
    pdes::Runtime::Options opt;
    opt.threads = threads;
    opt.lookahead = PdesScript::kW;
    rt = std::make_unique<pdes::Runtime>(PdesScript::kLps, opt);
    sim.attach_pdes(rt.get());
  }
  PerLpLog log(PdesScript::kLps);
  std::function<void(PdesScript::Child, int)> spawn =
      [&](PdesScript::Child c, int depth) {
        sim.schedule_on(c.lp, c.time, [&, c, depth] {
          log[c.lp].emplace_back(c.time, c.id);
          for (const auto& child : script.children_of(c.lp, c.time, c.id,
                                                      depth)) {
            spawn(child, depth + 1);
          }
        });
      };
  for (const auto& root : script.roots()) spawn(root, 0);
  sim.run();
  EXPECT_TRUE(sim.idle());
  if (stats_out != nullptr) *stats_out = sim.stats();
  return log;
}

/// Plain priority-queue reference over (time): valid because the script's
/// absolute times are distinct.
PerLpLog run_reference(const PdesScript& script) {
  struct Entry {
    PdesScript::Child c;
    int depth;
    bool operator>(const Entry& o) const { return c.time > o.c.time; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  for (const auto& root : script.roots()) queue.push(Entry{root, 0});
  PerLpLog log(PdesScript::kLps);
  while (!queue.empty()) {
    const Entry e = queue.top();
    queue.pop();
    log[e.c.lp].emplace_back(e.c.time, e.c.id);
    for (const auto& child :
         script.children_of(e.c.lp, e.c.time, e.c.id, e.depth)) {
      queue.push(Entry{child, e.depth + 1});
    }
  }
  return log;
}

TEST(PdesProperty, CrossLpDispatchMatchesSequentialAndReference) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    PdesScript script;
    script.seed = seed;
    const PerLpLog reference = run_reference(script);
    std::size_t total = 0;
    for (const auto& lp : reference) total += lp.size();
    ASSERT_GT(total, 50u) << "degenerate script, seed " << seed;

    const PerLpLog sequential = run_script(script, 0);
    EXPECT_EQ(sequential, reference) << "sequential engine, seed " << seed;

    Simulator::Stats width1{};
    const PerLpLog parallel1 = run_script(script, 1, &width1);
    EXPECT_EQ(parallel1, reference) << "pdes width 1, seed " << seed;
    EXPECT_EQ(width1.lookahead_violations, 0u);

    for (unsigned threads : {2u, 3u}) {
      Simulator::Stats stats{};
      const PerLpLog parallel = run_script(script, threads, &stats);
      EXPECT_EQ(parallel, parallel1) << "pdes width " << threads << ", seed "
                                     << seed;
      EXPECT_EQ(stats.lookahead_violations, 0u);
      // Full engine counters — not just the dispatch order — must be
      // width-invariant (the sorted mailbox drain makes lane routing and
      // arena behaviour deterministic).
      EXPECT_EQ(stats.events_dispatched, width1.events_dispatched);
      EXPECT_EQ(stats.now_lane_events, width1.now_lane_events);
      EXPECT_EQ(stats.ascending_events, width1.ascending_events);
      EXPECT_EQ(stats.pool_hits, width1.pool_hits);
      EXPECT_EQ(stats.pool_misses, width1.pool_misses);
      EXPECT_EQ(stats.mailbox_enqueues, width1.mailbox_enqueues);
      EXPECT_EQ(stats.window_stalls, width1.window_stalls);
    }
  }
}

TEST(PdesRuntime, RunUntilStopsAtTheLimitAndResumes) {
  pdes::Runtime::Options opt;
  opt.threads = 2;
  opt.lookahead = 0.5;
  pdes::Runtime rt(3, opt);
  Simulator sim;
  sim.attach_pdes(&rt);
  std::vector<int> order;
  sim.schedule_on(1, 1.0, [&] { order.push_back(1); });
  sim.schedule_on(2, 2.0, [&] { order.push_back(2); });
  sim.schedule_on(1, 3.0, [&] { order.push_back(3); });
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_dispatched(), 3u);
}

TEST(PdesRuntime, GuardsRejectBadArguments) {
  pdes::Runtime::Options opt;
  opt.threads = 1;
  opt.lookahead = 0.0;  // no lookahead -> conservative windows cannot work
  EXPECT_THROW(pdes::Runtime(2, opt), std::invalid_argument);
  opt.lookahead = 0.1;
  EXPECT_THROW(pdes::Runtime(0, opt), std::invalid_argument);

  pdes::Runtime rt(2, opt);
  Simulator sim;
  sim.attach_pdes(&rt);
  EXPECT_THROW(sim.schedule_on(7, 1.0, [] {}), std::out_of_range);
  sim.schedule_on(1, 1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), std::invalid_argument);
  // The sequential engine's parked-task arena is single-threaded; the PDES
  // network path must use its chain closures instead.
  EXPECT_THROW(sim.park([] {}), std::logic_error);
}

TEST(PdesRuntime, OffOwnerSubmitIsCountedAsViolation) {
  pdes::Runtime::Options opt;
  opt.threads = 1;
  opt.lookahead = 0.5;
  pdes::Runtime rt(2, opt);
  Simulator sim;
  sim.attach_pdes(&rt);
  FifoResource queue(sim, "disk");
  queue.set_lp(1);
  int fired = 0;
  // Submitted from app context (LP 0), owner is LP 1: flagged, not fatal.
  queue.submit(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.stats().lookahead_violations, 1u);
}

TEST(PdesRuntime, WindowCapOnlyAddsWindows) {
  PdesScript script;
  script.seed = 42;
  const PerLpLog reference = run_script(script, 1);

  pdes::Runtime::Options opt;
  opt.threads = 2;
  opt.lookahead = PdesScript::kW;
  opt.window_cap = PdesScript::kW / 8.0;  // narrower windows, same result
  pdes::Runtime rt(PdesScript::kLps, opt);
  EXPECT_DOUBLE_EQ(rt.window(), PdesScript::kW / 8.0);
  Simulator sim;
  sim.attach_pdes(&rt);
  PerLpLog log(PdesScript::kLps);
  std::function<void(PdesScript::Child, int)> spawn =
      [&](PdesScript::Child c, int depth) {
        sim.schedule_on(c.lp, c.time, [&, c, depth] {
          log[c.lp].emplace_back(c.time, c.id);
          for (const auto& child : script.children_of(c.lp, c.time, c.id,
                                                      depth)) {
            spawn(child, depth + 1);
          }
        });
      };
  for (const auto& root : script.roots()) spawn(root, 0);
  sim.run();
  EXPECT_EQ(log, reference);
  EXPECT_EQ(sim.stats().lookahead_violations, 0u);
}

}  // namespace
}  // namespace harl::sim
