// Parallel experiment harness: run_all / run_replicated on a thread pool
// must produce results exactly equal to the serial runs — the simulator is
// deterministic per instance and the harness orders results by index, so
// pool width can only change wall time, never a byte of output.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/harness/experiment.hpp"

namespace harl::harness {
namespace {

WorkloadBundle small_bundle() {
  workloads::IorConfig ior;
  ior.processes = 4;
  ior.request_size = 128 * KiB;
  ior.file_size = 64 * MiB;
  ior.requests_per_process = 8;
  return ior_bundle(ior);
}

ExperimentOptions small_options(ThreadPool* pool) {
  ExperimentOptions options;
  options.cluster.num_hservers = 3;
  options.cluster.num_sservers = 1;
  options.cluster.num_clients = 2;
  options.calibration.samples_per_size = 50;
  options.calibration.beta_samples = 50;
  options.pool = pool;
  // Small windows + a permissive gate so the adaptive scheme actually swaps
  // epochs inside this tiny workload: epoch swaps and migration are pure
  // simulated events, so they too must be bit-identical at any pool width.
  options.adaptive.advisor.window = 16;
  options.adaptive.advisor.min_gain = 0.05;
  return options;
}

std::vector<LayoutScheme> scheme_lineup() {
  return {
      LayoutScheme::fixed(64 * KiB),
      LayoutScheme::fixed(256 * KiB),
      LayoutScheme::random_stripes(1),
      LayoutScheme::harl(),
      LayoutScheme::harl_adaptive(),
  };
}

/// Serializes every numeric field of a result so "exactly equal" means
/// bit-for-bit equal formatted output, the property the figure tables need.
std::string fingerprint(const SchemeResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.label << '|' << r.layout_description << '|' << r.region_count << '|'
     << r.write.makespan << '|' << r.write.bytes << '|' << r.read.makespan
     << '|' << r.read.bytes << '|' << r.total.makespan << '|' << r.total.bytes;
  for (const Seconds io_time : r.server_io_time) os << '|' << io_time;
  os << '|' << r.sim_stats.events_dispatched << '|'
     << r.sim_stats.peak_queue_depth;
  if (r.adaptive.has_value()) {
    const auto& a = *r.adaptive;
    os << '|' << a.epochs_installed << '|' << a.windows_analyzed << '|'
       << a.recommendations << '|' << a.recommendations_deferred << '|'
       << a.migrated_bytes << '|' << a.migration_chunks << '|'
       << a.migration_interference << '|' << a.cost_evals << '|'
       << a.cost_evals_saved;
  }
  return os.str();
}

TEST(HarnessParallel, RunAllMatchesSerialExactly) {
  const WorkloadBundle bundle = small_bundle();
  const auto schemes = scheme_lineup();

  Experiment serial(small_options(nullptr));
  const auto serial_results = serial.run_all(bundle, schemes);

  ThreadPool pool(4);
  Experiment parallel(small_options(&pool));
  const auto parallel_results = parallel.run_all(bundle, schemes);

  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_EQ(fingerprint(serial_results[i]), fingerprint(parallel_results[i]))
        << "scheme " << schemes[i].label();
  }
}

TEST(HarnessParallel, RunAllMatchesAtEveryPoolWidth) {
  const WorkloadBundle bundle = small_bundle();
  const auto schemes = scheme_lineup();
  Experiment serial(small_options(nullptr));
  const auto want = serial.run_all(bundle, schemes);

  for (const std::size_t width : {1u, 2u, 7u}) {
    ThreadPool pool(width);
    Experiment exp(small_options(&pool));
    const auto got = exp.run_all(bundle, schemes);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(fingerprint(want[i]), fingerprint(got[i]))
          << "width " << width << " scheme " << schemes[i].label();
    }
  }
}

TEST(HarnessParallel, RunReplicatedMatchesSerialExactly) {
  const WorkloadBundle bundle = small_bundle();
  const LayoutScheme scheme = LayoutScheme::harl();

  Experiment serial(small_options(nullptr));
  const auto serial_out = serial.run_replicated(bundle, scheme, 4);

  ThreadPool pool(3);
  Experiment parallel(small_options(&pool));
  const auto parallel_out = parallel.run_replicated(bundle, scheme, 4);

  ASSERT_EQ(serial_out.runs.size(), parallel_out.runs.size());
  for (std::size_t i = 0; i < serial_out.runs.size(); ++i) {
    EXPECT_EQ(fingerprint(serial_out.runs[i]),
              fingerprint(parallel_out.runs[i]))
        << "replica " << i;
  }
  EXPECT_EQ(serial_out.mean_total, parallel_out.mean_total);
  EXPECT_EQ(serial_out.min_total, parallel_out.min_total);
  EXPECT_EQ(serial_out.max_total, parallel_out.max_total);
}

/// Engine-stat-free fingerprint: everything the simulation *produced*,
/// without the event-engine counters.  The PDES path adds relay events
/// (read-path server submits, transfer first hops become events on the
/// owning LP), so engine counters legitimately differ between the
/// sequential engine and the PDES runtime — but never between PDES widths.
std::string fingerprint_core(const SchemeResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.label << '|' << r.layout_description << '|' << r.region_count << '|'
     << r.write.makespan << '|' << r.write.bytes << '|' << r.read.makespan
     << '|' << r.read.bytes << '|' << r.total.makespan << '|' << r.total.bytes;
  for (const Seconds io_time : r.server_io_time) os << '|' << io_time;
  if (r.adaptive.has_value()) {
    const auto& a = *r.adaptive;
    os << '|' << a.epochs_installed << '|' << a.windows_analyzed << '|'
       << a.recommendations << '|' << a.recommendations_deferred << '|'
       << a.migrated_bytes << '|' << a.migration_chunks << '|'
       << a.migration_interference << '|' << a.cost_evals << '|'
       << a.cost_evals_saved;
  }
  return os.str();
}

/// The full flight-recorder output as one string: metrics JSON plus the
/// Chrome trace events.  Byte equality here is the strongest observability
/// claim — every trace event, async id, histogram bucket and metric sample
/// in the same order with the same values.
std::string obs_fingerprint(const SchemeResult& r) {
  std::ostringstream os;
  if (r.obs) {
    r.obs->write_metrics_json(os, 2);
    bool first = true;
    r.obs->append_trace_events(os, 1, r.label, first);
  }
  // Telemetry plane: the windowed time series (quantile sketches included)
  // and the health monitor summary ride the same byte-equality claim.
  if (r.health) {
    os << '|';
    r.health->timeseries().write_json(os, 0);
    os << '|';
    r.health->write_json(os, 0);
  }
  return os.str();
}

ExperimentOptions observed_options(unsigned sim_threads) {
  ExperimentOptions options = small_options(nullptr);
  options.observe = true;
  options.recorder.trace = true;
  options.sim_threads = sim_threads;
  // Arm the telemetry plane with a deterministic GC-pause straggler so the
  // byte-equality fingerprints cover windowed rollups, sketch quantiles,
  // health scoring and SLO attainment across engines and widths.
  options.telemetry.interval = 0.01;
  options.telemetry.slo = 0.002;
  options.cluster.gc_pause.period = 0.05;
  options.cluster.gc_pause.duration = 0.02;
  options.cluster.gc_pause.factor = 4.0;
  return options;
}

TEST(HarnessParallel, PdesMatchesSequentialEngineByteForByte) {
  const WorkloadBundle bundle = small_bundle();
  const auto schemes = scheme_lineup();

  Experiment seq(observed_options(0));
  const auto want = seq.run_all(bundle, schemes);

  Experiment pdes(observed_options(1));
  const auto got = pdes.run_all(bundle, schemes);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(fingerprint_core(want[i]), fingerprint_core(got[i]))
        << "scheme " << schemes[i].label();
    EXPECT_EQ(obs_fingerprint(want[i]), obs_fingerprint(got[i]))
        << "scheme " << schemes[i].label();
    EXPECT_EQ(got[i].sim_stats.lookahead_violations, 0u)
        << "scheme " << schemes[i].label();
    // Sequential runs never touch the PDES machinery.
    EXPECT_EQ(want[i].sim_stats.mailbox_enqueues, 0u);
    EXPECT_EQ(want[i].sim_stats.window_stalls, 0u);
    EXPECT_EQ(want[i].sim_stats.lookahead_violations, 0u);
  }
}

TEST(HarnessParallel, PdesWidthsAreByteIdentical) {
  const WorkloadBundle bundle = small_bundle();
  const auto schemes = scheme_lineup();

  Experiment base(observed_options(1));
  const auto want = base.run_all(bundle, schemes);

  for (const unsigned width : {2u, 4u, 7u}) {
    Experiment exp(observed_options(width));
    const auto got = exp.run_all(bundle, schemes);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      // Between PDES widths even the engine counters must match — the full
      // fingerprint, the observability output, and the PDES health counters.
      EXPECT_EQ(fingerprint(want[i]), fingerprint(got[i]))
          << "sim-threads " << width << " scheme " << schemes[i].label();
      EXPECT_EQ(obs_fingerprint(want[i]), obs_fingerprint(got[i]))
          << "sim-threads " << width << " scheme " << schemes[i].label();
      EXPECT_EQ(want[i].sim_stats.mailbox_enqueues,
                got[i].sim_stats.mailbox_enqueues);
      EXPECT_EQ(want[i].sim_stats.window_stalls,
                got[i].sim_stats.window_stalls);
      EXPECT_EQ(got[i].sim_stats.lookahead_violations, 0u);
    }
  }
}

TEST(HarnessParallel, PdesComposesWithSchemePool) {
  // Across-run (pool) and within-run (sim-threads) parallelism at once:
  // every simulated run gets its own pdes::Runtime, so the combination must
  // still reproduce the serial sequential results.
  const WorkloadBundle bundle = small_bundle();
  const auto schemes = scheme_lineup();
  Experiment serial(small_options(nullptr));
  const auto want = serial.run_all(bundle, schemes);

  ThreadPool pool(3);
  ExperimentOptions options = small_options(&pool);
  options.sim_threads = 2;
  Experiment exp(options);
  const auto got = exp.run_all(bundle, schemes);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(fingerprint_core(want[i]), fingerprint_core(got[i]))
        << "scheme " << schemes[i].label();
    EXPECT_EQ(got[i].sim_stats.lookahead_violations, 0u);
  }
}

TEST(HarnessParallel, PoolMayBeSharedWithPlanner) {
  // One pool for both harness-level scheme fan-out and the planner's
  // region-level parallel_for: nesting on the same (work-helping) pool must
  // neither deadlock nor change any result.
  const WorkloadBundle bundle = small_bundle();
  const auto schemes = scheme_lineup();
  Experiment serial(small_options(nullptr));
  const auto want = serial.run_all(bundle, schemes);

  ThreadPool pool(2);
  ExperimentOptions options = small_options(&pool);
  options.planner.pool = &pool;
  Experiment shared(options);
  const auto got = shared.run_all(bundle, schemes);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(fingerprint(want[i]), fingerprint(got[i]))
        << "scheme " << schemes[i].label();
  }
}

}  // namespace
}  // namespace harl::harness
