// Tests for the workload generators: IOR, multi-region IOR, BTIO, and the
// random property-test workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/workloads/btio.hpp"
#include "src/workloads/ior.hpp"
#include "src/workloads/multiregion.hpp"
#include "src/workloads/random_workload.hpp"

namespace harl::workloads {
namespace {

// -------------------------------------------------------------------- IOR --

TEST(Ior, GeneratesOneProgramPerProcess) {
  IorConfig cfg;
  cfg.processes = 4;
  cfg.file_size = 64 * MiB;
  cfg.request_size = 512 * KiB;
  const auto programs = make_ior_programs(cfg);
  ASSERT_EQ(programs.size(), 4u);
  // Default request count fills each segment once.
  const std::size_t expected = 64 * MiB / 4 / (512 * KiB);
  for (const auto& p : programs) EXPECT_EQ(p.size(), expected);
}

TEST(Ior, RequestsStayWithinTheRankSegment) {
  IorConfig cfg;
  cfg.processes = 4;
  cfg.file_size = 64 * MiB;
  cfg.request_size = 256 * KiB;
  cfg.requests_per_process = 200;
  const auto programs = make_ior_programs(cfg);
  const Bytes segment = cfg.file_size / cfg.processes;
  for (std::size_t rank = 0; rank < programs.size(); ++rank) {
    for (const auto& action : programs[rank]) {
      ASSERT_EQ(action.extents.size(), 1u);
      const auto& e = action.extents[0];
      EXPECT_GE(e.offset, rank * segment);
      EXPECT_LE(e.offset + e.size, (rank + 1) * segment);
      EXPECT_EQ(e.size, cfg.request_size);
      EXPECT_EQ(e.offset % cfg.request_size, 0u);  // aligned
    }
  }
}

TEST(Ior, SequentialModeCoversTheSegmentInOrder) {
  IorConfig cfg;
  cfg.processes = 2;
  cfg.file_size = 8 * MiB;
  cfg.request_size = 1 * MiB;
  cfg.random_offsets = false;
  const auto programs = make_ior_programs(cfg);
  for (std::size_t i = 0; i < programs[0].size(); ++i) {
    EXPECT_EQ(programs[0][i].extents[0].offset, i * MiB);
  }
}

TEST(Ior, RandomOffsetsAreSeededDeterministically) {
  IorConfig cfg;
  cfg.processes = 2;
  cfg.file_size = 32 * MiB;
  cfg.requests_per_process = 50;
  const auto a = make_ior_programs(cfg);
  const auto b = make_ior_programs(cfg);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t i = 0; i < a[r].size(); ++i) {
      EXPECT_EQ(a[r][i].extents[0], b[r][i].extents[0]);
    }
  }
  cfg.seed = 8888;
  const auto c = make_ior_programs(cfg);
  bool any_differ = false;
  for (std::size_t i = 0; i < a[0].size(); ++i) {
    any_differ |= !(a[0][i].extents[0] == c[0][i].extents[0]);
  }
  EXPECT_TRUE(any_differ);
}

TEST(Ior, InterleavedPatternStridesByRank) {
  IorConfig cfg;
  cfg.processes = 4;
  cfg.file_size = 16 * MiB;
  cfg.request_size = 1 * MiB;
  cfg.random_offsets = false;
  cfg.pattern = IorAccessPattern::kInterleaved;
  const auto programs = make_ior_programs(cfg);
  for (std::size_t rank = 0; rank < 4; ++rank) {
    for (std::size_t i = 0; i < programs[rank].size(); ++i) {
      EXPECT_EQ(programs[rank][i].extents[0].offset,
                (i * 4 + rank) * MiB);
    }
  }
}

TEST(Ior, InterleavedRandomOffsetsStayOnTheRanksStride) {
  IorConfig cfg;
  cfg.processes = 4;
  cfg.file_size = 64 * MiB;
  cfg.request_size = 512 * KiB;
  cfg.requests_per_process = 40;
  cfg.pattern = IorAccessPattern::kInterleaved;
  const auto programs = make_ior_programs(cfg);
  for (std::size_t rank = 0; rank < 4; ++rank) {
    for (const auto& action : programs[rank]) {
      const Bytes block = action.extents[0].offset / cfg.request_size;
      EXPECT_EQ(block % 4, rank);
      EXPECT_LT(action.extents[0].offset + cfg.request_size,
                cfg.file_size + 1);
    }
  }
}

TEST(Ior, CollectiveFlagProducesCollectiveActions) {
  IorConfig cfg;
  cfg.processes = 2;
  cfg.file_size = 8 * MiB;
  cfg.collective = true;
  const auto programs = make_ior_programs(cfg);
  for (const auto& p : programs) {
    for (const auto& a : p) {
      EXPECT_EQ(a.kind, mw::IoAction::Kind::kCollectiveIo);
    }
  }
}

TEST(Ior, TotalBytesMatchesGeneratedPrograms) {
  IorConfig cfg;
  cfg.processes = 8;
  cfg.file_size = 128 * MiB;
  cfg.request_size = 512 * KiB;
  const auto programs = make_ior_programs(cfg);
  EXPECT_EQ(ior_total_bytes(cfg), program_volume(programs).write);
}

TEST(Ior, ValidatesConfig) {
  IorConfig bad;
  bad.processes = 0;
  EXPECT_THROW(make_ior_programs(bad), std::invalid_argument);
  IorConfig small;
  small.processes = 16;
  small.file_size = 1 * MiB;
  small.request_size = 512 * KiB;  // segment 64K < request
  EXPECT_THROW(make_ior_programs(small), std::invalid_argument);
}

// ----------------------------------------------------------- multi-region --

TEST(MultiRegion, PaperDefaultsCoverSevenAndAQuarterGigabytes) {
  const MultiRegionConfig cfg;
  EXPECT_EQ(multiregion_file_size(cfg),
            256 * MiB + 1 * GiB + 2 * GiB + 4 * GiB);
}

TEST(MultiRegion, RequestsUseTheirRegionsRequestSize) {
  MultiRegionConfig cfg;
  cfg.regions = {{16 * MiB, 128 * KiB}, {32 * MiB, 1 * MiB}};
  cfg.processes = 4;
  cfg.coverage = 0.5;
  const auto programs = make_multiregion_programs(cfg);
  ASSERT_EQ(programs.size(), 4u);
  for (const auto& prog : programs) {
    for (const auto& action : prog) {
      if (action.kind != mw::IoAction::Kind::kIo) continue;
      const auto& e = action.extents[0];
      if (e.offset < 16 * MiB) {
        EXPECT_EQ(e.size, 128 * KiB);
      } else {
        EXPECT_EQ(e.size, 1 * MiB);
        EXPECT_GE(e.offset, 16 * MiB);
        EXPECT_LT(e.offset + e.size, 48 * MiB + 1);
      }
    }
  }
}

TEST(MultiRegion, BarriersSeparateRegionPhases) {
  MultiRegionConfig cfg;
  cfg.regions = {{16 * MiB, 128 * KiB}, {32 * MiB, 1 * MiB}};
  cfg.processes = 2;
  cfg.coverage = 0.1;
  const auto programs = make_multiregion_programs(cfg);
  for (const auto& prog : programs) {
    const std::size_t barriers = static_cast<std::size_t>(
        std::count_if(prog.begin(), prog.end(), [](const mw::IoAction& a) {
          return a.kind == mw::IoAction::Kind::kBarrier;
        }));
    EXPECT_EQ(barriers, cfg.regions.size());
  }
}

TEST(MultiRegion, CoverageScalesVolume) {
  MultiRegionConfig full;
  full.regions = {{64 * MiB, 512 * KiB}};
  full.processes = 4;
  MultiRegionConfig half = full;
  half.coverage = 0.5;
  EXPECT_NEAR(static_cast<double>(multiregion_total_bytes(half)),
              static_cast<double>(multiregion_total_bytes(full)) / 2.0,
              static_cast<double>(4 * 512 * KiB));
}

TEST(MultiRegion, ValidatesConfig) {
  MultiRegionConfig bad;
  bad.coverage = 0.0;
  EXPECT_THROW(make_multiregion_programs(bad), std::invalid_argument);
  MultiRegionConfig tiny;
  tiny.regions = {{1 * MiB, 512 * KiB}};
  tiny.processes = 16;  // segment 64K < request 512K
  EXPECT_THROW(make_multiregion_programs(tiny), std::invalid_argument);
}

// --------------------------------------------------------------------- BTIO --

TEST(Btio, RequiresSquareProcessCounts) {
  BtioConfig cfg;
  cfg.processes = 3;
  EXPECT_THROW(make_btio_programs(cfg), std::invalid_argument);
  cfg.processes = 4;
  cfg.grid = 8;
  EXPECT_NO_THROW(make_btio_programs(cfg));
}

TEST(Btio, DumpCountFollowsStepsAndInterval) {
  BtioConfig cfg;
  cfg.time_steps = 200;
  cfg.write_interval = 5;
  EXPECT_EQ(btio_dump_count(cfg), 40);
  cfg.max_dumps = 3;
  EXPECT_EQ(btio_dump_count(cfg), 3);
}

TEST(Btio, EachDumpIsWrittenExactlyOnce) {
  BtioConfig cfg;
  cfg.processes = 4;
  cfg.grid = 8;
  cfg.time_steps = 10;
  cfg.write_interval = 5;  // 2 dumps
  cfg.read_back = false;
  const auto programs = make_btio_programs(cfg);
  const Bytes dump_bytes = 8 * 8 * 8 * cfg.cell_bytes;

  // Sum extents per dump across ranks; verify exact tiling of [0, dump).
  std::map<int, Bytes> dump_total;
  std::map<int, std::set<std::pair<Bytes, Bytes>>> dump_extents;
  for (const auto& prog : programs) {
    int dump_index = 0;
    for (const auto& action : prog) {
      if (action.kind != mw::IoAction::Kind::kCollectiveIo) continue;
      for (const auto& e : action.extents) {
        dump_total[dump_index] += e.size;
        const Bytes base = static_cast<Bytes>(dump_index) * dump_bytes;
        EXPECT_GE(e.offset, base);
        EXPECT_LE(e.offset + e.size, base + dump_bytes);
        auto [it, inserted] =
            dump_extents[dump_index].emplace(e.offset, e.size);
        EXPECT_TRUE(inserted);  // no duplicate extents
      }
      ++dump_index;
    }
    EXPECT_EQ(dump_index, 2);
  }
  ASSERT_EQ(dump_total.size(), 2u);
  EXPECT_EQ(dump_total[0], dump_bytes);
  EXPECT_EQ(dump_total[1], dump_bytes);
}

TEST(Btio, ReadBackMirrorsTheWrites) {
  BtioConfig cfg;
  cfg.processes = 4;
  cfg.grid = 8;
  cfg.time_steps = 5;
  cfg.write_interval = 5;  // 1 dump
  cfg.read_back = true;
  const auto programs = make_btio_programs(cfg);
  const auto volume = program_volume(programs);
  EXPECT_EQ(volume.read, volume.write);
  EXPECT_EQ(volume.write, btio_file_size(cfg));
}

TEST(Btio, ContiguousLinesAreMerged) {
  // With a 1x1 process grid the whole dump is one contiguous extent.
  BtioConfig cfg;
  cfg.processes = 1;
  cfg.grid = 8;
  cfg.time_steps = 5;
  cfg.write_interval = 5;
  cfg.read_back = false;
  const auto programs = make_btio_programs(cfg);
  ASSERT_EQ(programs.size(), 1u);
  const auto& action = programs[0][0];
  ASSERT_EQ(action.extents.size(), 1u);
  EXPECT_EQ(action.extents[0].size, 8 * 8 * 8 * cfg.cell_bytes);
}

TEST(Btio, ComputePhasesAppearBetweenDumps) {
  BtioConfig cfg;
  cfg.processes = 4;
  cfg.grid = 8;
  cfg.time_steps = 10;
  cfg.write_interval = 5;
  cfg.compute_per_step = 0.01;
  cfg.read_back = false;
  const auto programs = make_btio_programs(cfg);
  const auto& prog = programs[0];
  const std::size_t computes = static_cast<std::size_t>(
      std::count_if(prog.begin(), prog.end(), [](const mw::IoAction& a) {
        return a.kind == mw::IoAction::Kind::kCompute;
      }));
  EXPECT_EQ(computes, 2u);  // one per dump window
}

TEST(Btio, PaperConfigMoves169GBTotal) {
  const BtioConfig cfg = btio_paper_config(16);
  const double total = 2.0 * static_cast<double>(btio_file_size(cfg));
  EXPECT_NEAR(total / 1e9, 1.69, 0.05);
}

// ------------------------------------------------------------------ random --

TEST(RandomWorkload, RespectsBoundsAndAlignment) {
  RandomWorkloadConfig cfg;
  cfg.requests = 500;
  cfg.file_size = 256 * MiB;
  cfg.min_request = 8 * KiB;
  cfg.max_request = 1 * MiB;
  cfg.align = 4 * KiB;
  const auto trace = make_random_trace(cfg);
  ASSERT_EQ(trace.size(), 500u);
  for (const auto& r : trace) {
    EXPECT_GE(r.size, cfg.min_request);
    EXPECT_LE(r.size, cfg.max_request);
    EXPECT_LE(r.offset + r.size, cfg.file_size);
    EXPECT_EQ(r.offset % cfg.align, 0u);
    EXPECT_LT(r.rank, cfg.ranks);
  }
}

TEST(RandomWorkload, WriteFractionExtremes) {
  RandomWorkloadConfig cfg;
  cfg.requests = 200;
  cfg.write_fraction = 0.0;
  for (const auto& r : make_random_trace(cfg)) EXPECT_EQ(r.op, IoOp::kRead);
  cfg.write_fraction = 1.0;
  for (const auto& r : make_random_trace(cfg)) EXPECT_EQ(r.op, IoOp::kWrite);
}

TEST(RandomWorkload, ProgramsMatchTraceRequests) {
  RandomWorkloadConfig cfg;
  cfg.requests = 100;
  cfg.ranks = 4;
  const auto trace = make_random_trace(cfg);
  const auto programs = make_random_programs(cfg);
  ASSERT_EQ(programs.size(), 4u);
  std::size_t total = 0;
  for (const auto& p : programs) total += p.size();
  EXPECT_EQ(total, trace.size());
}

TEST(RandomWorkload, ValidatesConfig) {
  RandomWorkloadConfig bad;
  bad.min_request = 0;
  EXPECT_THROW(make_random_trace(bad), std::invalid_argument);
  RandomWorkloadConfig big;
  big.max_request = 100 * GiB;
  EXPECT_THROW(make_random_trace(big), std::invalid_argument);
  RandomWorkloadConfig frac;
  frac.write_fraction = 1.5;
  EXPECT_THROW(make_random_trace(frac), std::invalid_argument);
}

}  // namespace
}  // namespace harl::workloads
